// Preemptive multi-CPU scheduler for one simulated node.
//
// Model (a deliberately simplified Linux-2.4-era design, documented in
// DESIGN.md):
//  - static priority levels, FIFO round-robin with a fixed quantum inside
//    each level (FIFO also on wakeup — no head insertion — so cycling
//    interactive threads cannot starve another waiter, the minimal form of
//    the 2.4 epoch fairness guarantee);
//  - an "interactive" bit standing in for the counter/goodness sleeper
//    bonus: a thread that voluntarily blocked may, on wakeup, preempt a
//    running CPU hog (a thread last descheduled by quantum expiry), but
//    never another interactive thread;
//  - hardware IRQs steal the CPU from whatever runs, FIFO per CPU;
//  - optional per-thread CPU affinity (used by per-CPU ksoftirqd).
//
// These rules produce the paper's observable effects: a woken socket
// monitor thread waits its FIFO turn behind every runnable peer when the
// node is busy, and deferred network processing (ksoftirqd, never granted
// the interactive bonus) drains only at round-robin pace — so socket
// monitoring latency grows with the number of background threads (Fig 3)
// while one-sided RDMA reads never enter this machinery at all.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "os/kernel_stats.hpp"
#include "os/program.hpp"
#include "os/thread.hpp"
#include "os/types.hpp"
#include "sim/simulation.hpp"

namespace rdmamon::os {

class Node;

/// Options for Scheduler::spawn.
struct SpawnOptions {
  Priority priority = Priority::Normal;
  bool kernel_thread = false;  ///< excluded from user nr_running
  CpuId affinity = -1;         ///< pin to one CPU, or -1 for any
  bool interactive_allowed = true;  ///< see SimThread::interactive_allowed
};

class Scheduler {
 public:
  using ProgramFactory = std::function<Program(SimThread&)>;
  using IrqBody = std::function<void()>;

  Scheduler(sim::Simulation& simu, Node& node, KernelStats& stats,
            const NodeConfig& cfg);
  ~Scheduler();

  /// Creates a thread running `factory(thread)` and makes it runnable.
  SimThread* spawn(std::string name, ProgramFactory factory,
                   SpawnOptions opts = {});

  /// Makes a Sleeping/Blocked thread runnable (wait-queue notify path).
  /// No-op if the thread is already runnable or finished.
  void wake(SimThread* t);

  /// Terminates a thread wherever it is (test/teardown helper).
  void kill(SimThread* t);

  /// Steals `cost` of CPU time on `cpu` for a hardware interrupt, then
  /// runs `body` in handler context. Nested requests queue FIFO.
  void request_irq(CpuId cpu, sim::Duration cost, IrqBody body);

  // --- introspection -------------------------------------------------------
  bool cpu_idle(CpuId cpu) const;
  bool cpu_in_irq(CpuId cpu) const;
  SimThread* running_on(CpuId cpu) const;
  int ready_count() const;
  int num_cpus() const { return static_cast<int>(cpus_.size()); }
  const NodeConfig& config() const { return cfg_; }
  Node& node() { return node_; }
  sim::Simulation& simu() { return simu_; }
  KernelStats& stats() { return stats_; }

  /// Total context switches performed (micro-benchmark metric).
  std::uint64_t context_switches() const { return ctx_switches_; }

 private:
  struct IrqJob {
    sim::Duration cost;
    IrqBody body;
  };

  // Per-CPU timer handles below (seg_ev/quantum_ev/irq_ev) are re-armed
  // on every segment/quantum/IRQ and cancelled on preemption — all O(1)
  // and allocation-free on the event queue's near-future wheel, so the
  // scheduler's churn sets the kernel's steady-state hot path.
  struct Cpu {
    CpuId id = 0;
    SimThread* current = nullptr;

    // Active execution segment (thread action or context-switch overhead).
    bool seg_active = false;
    bool seg_is_ctx = false;  ///< context-switch overhead segment
    CpuState seg_state = CpuState::Idle;
    sim::Duration seg_left{};
    sim::TimePoint run_start{};
    sim::EventHandle seg_ev;

    // Round-robin quantum for the current thread.
    sim::Duration quantum_left{};
    sim::EventHandle quantum_ev;

    // Hardware interrupt servicing.
    bool in_irq = false;
    std::deque<IrqJob> irq_q;
    sim::EventHandle irq_ev;
  };

  // Ready-queue management.
  void enqueue_tail(SimThread* t);
  SimThread* pick_ready(CpuId cpu);
  bool someone_waiting_for(const Cpu& c) const;
  void remove_from_ready(SimThread* t);

  // Dispatching.
  Cpu* find_idle_cpu(SimThread* t);
  Cpu* find_preemptable_cpu(SimThread* t);
  void make_runnable(SimThread* t, bool prefer_head);
  void dispatch(Cpu& c, SimThread* t);
  void cpu_try_dispatch(Cpu& c);
  void start_segment(Cpu& c, sim::Duration d, CpuState state, bool is_ctx);
  void on_segment_done(Cpu& c);
  void on_quantum_expired(Cpu& c);
  void pause_segment(Cpu& c);
  void resume_segment(Cpu& c);
  void preempt(Cpu& c);  ///< current -> ready tail, then redispatch
  void run_current(Cpu& c);
  void deschedule(Cpu& c, ThreadState new_state, bool voluntary);
  void account_segment(Cpu& c, sim::Duration ran);
  sim::TimePoint round_up_tick(sim::TimePoint t) const;

  // IRQ internals.
  void begin_irq(Cpu& c);
  void run_next_irq(Cpu& c);

  sim::Simulation& simu_;
  Node& node_;
  KernelStats& stats_;
  NodeConfig cfg_;

  std::vector<Cpu> cpus_;
  std::vector<std::deque<SimThread*>> ready_;  // one deque per priority level
  std::vector<std::unique_ptr<SimThread>> threads_;
  ThreadId next_tid_ = 1;
  std::uint64_t ctx_switches_ = 0;
};

}  // namespace rdmamon::os
