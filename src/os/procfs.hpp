// The /proc view of a node: the snapshot every user-space monitoring
// scheme reads, and (via the same struct) the kernel-memory image the
// RDMA-Sync scheme fetches directly.
#pragma once

#include <vector>

#include "os/types.hpp"
#include "sim/time.hpp"

namespace rdmamon::os {

class Node;

/// One consistent reading of a node's resource usage. `computed_at` is the
/// simulated instant the values were *computed by the kernel*; monitoring
/// staleness is measured against it in the accuracy experiments.
struct LoadSnapshot {
  sim::TimePoint computed_at{};
  double cpu_load = 0.0;   ///< mean CPU utilisation in [0,1]
  int nr_running = 0;      ///< runnable user threads (Fig 5a metric)
  int nr_threads = 0;      ///< live user threads
  double mem_load = 0.0;   ///< memory used fraction in [0,1]
  double net_rate = 0.0;   ///< bytes/sec EMA
  int connections = 0;     ///< open sockets
  std::vector<int> irq_pending;  ///< per-CPU pending hard interrupts

  int irq_pending_total() const {
    int s = 0;
    for (int v : irq_pending) s += v;
    return s;
  }
};

/// The /proc filesystem interface. Reading it costs kernel CPU time: user
/// threads must pay `co_await ComputeKernel{procfs.read_cost()}` before
/// calling snapshot(), mirroring the trap the paper describes (Fig 1,
/// steps 2-3). The RDMA-Sync path instead reads the same data through a
/// registered kernel memory region at zero host-CPU cost.
class ProcFs {
 public:
  explicit ProcFs(Node& node) : node_(node) {}

  /// Kernel time one snapshot read costs the calling thread.
  sim::Duration read_cost() const;

  /// The /proc view: what a user-space reader obtains. CPU, memory,
  /// thread and network values are current, but the interrupt counters
  /// reflect a *synchronized* read — the 2.4-era read path spins on the
  /// global IRQ lock until in-flight handlers drain, so only interrupts
  /// arriving in the final copy-out window are visible as pending.
  /// Free of simulated cost: the caller pays read_cost() explicitly.
  LoadSnapshot snapshot() const;

  /// The view a lock-free one-sided RDMA READ of the kernel pages gets at
  /// the DMA instant: same values, but irq_pending holds the transient
  /// truth (in-service + queued hard IRQs, plus deferred softirq work) —
  /// the detail only RDMA-Sync / e-RDMA-Sync can exploit (Fig 6).
  LoadSnapshot snapshot_dma() const;

 private:
  LoadSnapshot base_snapshot() const;
  Node& node_;
};

}  // namespace rdmamon::os
