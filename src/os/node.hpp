// A simulated cluster node: CPUs + scheduler + interrupt controller +
// kernel statistics + /proc. The network fabric attaches a NIC to it
// (src/net); applications spawn threads on it.
#pragma once

#include <memory>
#include <string>

#include "os/interrupts.hpp"
#include "os/kernel_stats.hpp"
#include "os/procfs.hpp"
#include "os/scheduler.hpp"
#include "os/types.hpp"
#include "sim/simulation.hpp"

namespace rdmamon::os {

class Node {
 public:
  Node(sim::Simulation& simu, NodeConfig cfg);

  /// Non-copyable/movable: components hold back-references.
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  sim::Simulation& simu() { return simu_; }
  const NodeConfig& config() const { return cfg_; }
  const std::string& name() const { return cfg_.name; }

  Scheduler& sched() { return *sched_; }
  IrqController& irq() { return *irq_; }
  KernelStats& stats() { return stats_; }
  const KernelStats& stats() const { return stats_; }
  ProcFs& procfs() { return procfs_; }

  /// Convenience: spawn a thread on this node.
  SimThread* spawn(std::string name, Scheduler::ProgramFactory f,
                   SpawnOptions opts = {}) {
    return sched_->spawn(std::move(name), std::move(f), opts);
  }

  /// Cluster-assigned identifier (set by the fabric / testbed builder).
  int id = -1;

 private:
  void schedule_timer_tick();

  sim::Simulation& simu_;
  NodeConfig cfg_;
  KernelStats stats_;
  std::unique_ptr<Scheduler> sched_;
  std::unique_ptr<IrqController> irq_;
  ProcFs procfs_;
};

}  // namespace rdmamon::os
