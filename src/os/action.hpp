// The vocabulary of things a simulated thread can ask its kernel to do.
// Thread bodies are C++20 coroutines that co_await these actions; the
// scheduler interprets them (see program.hpp / scheduler.hpp).
#pragma once

#include <variant>

#include "sim/time.hpp"

namespace rdmamon::os {

class WaitQueue;

/// Burn CPU in user mode for `amount`.
struct Compute {
  sim::Duration amount;
};

/// Burn CPU in kernel mode (syscall / trap work); accounted as system time.
struct ComputeKernel {
  sim::Duration amount;
};

/// Sleep for at least `amount`; the wakeup is rounded UP to the next
/// scheduler tick (1/hz), reproducing the paper's observation that the
/// back-end reporting resolution is bounded by the OS timer resolution.
struct SleepFor {
  sim::Duration amount;
};

/// Sleep until at least `when` (same tick rounding).
struct SleepUntil {
  sim::TimePoint when;
};

/// Block until the given wait queue is notified. Use the classic
/// `while (!predicate()) co_await WaitOn{&wq};` pattern — the DES is
/// single-threaded so there is no lost-wakeup race, but spurious wakeups
/// are possible by design (notify_all).
struct WaitOn {
  WaitQueue* wq;
};

/// Voluntarily give up the CPU; the thread re-queues at the tail.
struct YieldCpu {};

/// Terminate the thread.
struct ExitThread {};

using Action = std::variant<Compute, ComputeKernel, SleepFor, SleepUntil,
                            WaitOn, YieldCpu, ExitThread>;

}  // namespace rdmamon::os
