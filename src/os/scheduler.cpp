#include "os/scheduler.hpp"

#include <algorithm>
#include <cassert>

#include "os/wait.hpp"

namespace rdmamon::os {

// --- WaitQueue notify (here because it needs Scheduler/SimThread) ----------

void WaitQueue::notify_one() {
  if (waiters_.empty()) return;
  SimThread* t = waiters_.front();
  waiters_.pop_front();
  t->scheduler().wake(t);
}

void WaitQueue::notify_all() {
  while (!waiters_.empty()) notify_one();
}

// --- Scheduler --------------------------------------------------------------

Scheduler::Scheduler(sim::Simulation& simu, Node& node, KernelStats& stats,
                     const NodeConfig& cfg)
    : simu_(simu), node_(node), stats_(stats), cfg_(cfg) {
  cpus_.resize(static_cast<std::size_t>(cfg_.cpus));
  for (int i = 0; i < cfg_.cpus; ++i) cpus_[static_cast<std::size_t>(i)].id = i;
  ready_.resize(kPriorityLevels);
}

Scheduler::~Scheduler() = default;

SimThread* Scheduler::spawn(std::string name, ProgramFactory factory,
                            SpawnOptions opts) {
  auto owned = std::make_unique<SimThread>(next_tid_++, std::move(name),
                                           opts.priority, node_, *this);
  SimThread* t = owned.get();
  t->set_kernel_thread(opts.kernel_thread);
  t->affinity = opts.affinity;
  t->interactive_allowed = opts.interactive_allowed;
  threads_.push_back(std::move(owned));
  t->attach_factory(std::move(factory));
  stats_.on_thread_created(t->kernel_thread());
  t->state = ThreadState::Ready;
  t->ready_since = simu_.now();
  stats_.on_thread_runnable(t->kernel_thread());
  if (Cpu* c = find_idle_cpu(t)) {
    dispatch(*c, t);
  } else {
    enqueue_tail(t);
  }
  return t;
}

void Scheduler::wake(SimThread* t) {
  if (t->state != ThreadState::Sleeping && t->state != ThreadState::Blocked) {
    return;
  }
  if (t->state == ThreadState::Sleeping) t->sleep_event.cancel();
  if (t->waiting_on) {
    t->waiting_on->remove(t);
    t->waiting_on = nullptr;
  }
  make_runnable(t, t->interactive && t->interactive_allowed);
}

void Scheduler::kill(SimThread* t) {
  switch (t->state) {
    case ThreadState::Finished:
      return;
    case ThreadState::Running: {
      Cpu& c = cpus_[static_cast<std::size_t>(t->cpu)];
      pause_segment(c);
      c.quantum_ev.cancel();
      c.current = nullptr;
      t->cpu = -1;
      t->state = ThreadState::Finished;
      stats_.on_thread_unrunnable(t->kernel_thread());
      stats_.on_thread_exited(t->kernel_thread());
      if (!c.in_irq) cpu_try_dispatch(c);
      return;
    }
    case ThreadState::Ready:
      remove_from_ready(t);
      t->state = ThreadState::Finished;
      stats_.on_thread_unrunnable(t->kernel_thread());
      stats_.on_thread_exited(t->kernel_thread());
      return;
    case ThreadState::Sleeping:
      t->sleep_event.cancel();
      t->state = ThreadState::Finished;
      stats_.on_thread_exited(t->kernel_thread());
      return;
    case ThreadState::Blocked:
      if (t->waiting_on) {
        t->waiting_on->remove(t);
        t->waiting_on = nullptr;
      }
      t->state = ThreadState::Finished;
      stats_.on_thread_exited(t->kernel_thread());
      return;
  }
}

// --- ready queue -------------------------------------------------------------

void Scheduler::enqueue_tail(SimThread* t) {
  ready_[static_cast<std::size_t>(t->priority())].push_back(t);
}

SimThread* Scheduler::pick_ready(CpuId cpu) {
  for (auto& level : ready_) {
    for (auto it = level.begin(); it != level.end(); ++it) {
      SimThread* t = *it;
      if (t->affinity == -1 || t->affinity == cpu) {
        level.erase(it);
        return t;
      }
    }
  }
  return nullptr;
}

bool Scheduler::someone_waiting_for(const Cpu& c) const {
  const int cur_prio = static_cast<int>(c.current->priority());
  for (int lvl = 0; lvl <= cur_prio; ++lvl) {
    for (SimThread* t : ready_[static_cast<std::size_t>(lvl)]) {
      if (t->affinity == -1 || t->affinity == c.id) return true;
    }
  }
  return false;
}

void Scheduler::remove_from_ready(SimThread* t) {
  auto& level = ready_[static_cast<std::size_t>(t->priority())];
  auto it = std::find(level.begin(), level.end(), t);
  assert(it != level.end());
  level.erase(it);
}

int Scheduler::ready_count() const {
  std::size_t n = 0;
  for (const auto& level : ready_) n += level.size();
  return static_cast<int>(n);
}

// --- dispatching -------------------------------------------------------------

Scheduler::Cpu* Scheduler::find_idle_cpu(SimThread* t) {
  for (auto& c : cpus_) {
    if (c.current == nullptr && !c.in_irq &&
        (t->affinity == -1 || t->affinity == c.id)) {
      return &c;
    }
  }
  return nullptr;
}

Scheduler::Cpu* Scheduler::find_preemptable_cpu(SimThread* t) {
  // A CPU is preemptable only while it executes an ordinary thread
  // segment. `!seg_active` means the CPU is mid-scheduling-decision (its
  // current thread's coroutine body is being advanced right now — this
  // wake may well originate from that body); preempting it would corrupt
  // the in-flight decision.
  auto eligible = [&](const Cpu& c) {
    return !c.in_irq && c.current != nullptr && c.seg_active &&
           !c.seg_is_ctx && (t->affinity == -1 || t->affinity == c.id);
  };
  // First pass: a CPU running a strictly lower-priority thread.
  for (auto& c : cpus_) {
    if (!eligible(c)) continue;
    if (static_cast<int>(c.current->priority()) >
        static_cast<int>(t->priority())) {
      return &c;
    }
  }
  // Second pass: an interactive waker may preempt a same-priority CPU hog.
  if (t->interactive) {
    for (auto& c : cpus_) {
      if (!eligible(c)) continue;
      if (c.current->priority() == t->priority() && !c.current->interactive) {
        return &c;
      }
    }
  }
  return nullptr;
}

void Scheduler::make_runnable(SimThread* t, bool interactive_wake) {
  t->state = ThreadState::Ready;
  t->ready_since = simu_.now();
  stats_.on_thread_runnable(t->kernel_thread());
  if (Cpu* c = find_idle_cpu(t)) {
    dispatch(*c, t);
    return;
  }
  if (interactive_wake) {
    if (Cpu* c = find_preemptable_cpu(t)) {
      // Evict the current occupant, then take its CPU.
      pause_segment(*c);
      c->quantum_ev.cancel();
      SimThread* v = c->current;
      if (!c->seg_is_ctx) {
        v->remaining = c->seg_left;
        v->remaining_is_kernel = (c->seg_state == CpuState::Kernel);
        v->has_remaining = c->seg_left.ns > 0;
      }
      v->state = ThreadState::Ready;
      v->ready_since = simu_.now();
      v->cpu = -1;
      c->current = nullptr;
      enqueue_tail(v);
      dispatch(*c, t);
      return;
    }
  }
  // FIFO within the level: no head insertion, so a continuously-cycling
  // set of interactive threads cannot starve another waiter (the 2.4
  // epoch mechanism's fairness guarantee, in minimal form). Interactivity
  // only buys preemption over non-interactive currents, above.
  enqueue_tail(t);
}

void Scheduler::dispatch(Cpu& c, SimThread* t) {
  assert(c.current == nullptr && !c.in_irq);
  t->state = ThreadState::Running;
  t->cpu = c.id;
  c.current = t;
  t->runqueue_wait_ns.add(
      static_cast<double>((simu_.now() - t->ready_since).ns));
  ++ctx_switches_;
  c.quantum_left = cfg_.quantum;
  c.quantum_ev.cancel();
  c.quantum_ev =
      simu_.after(c.quantum_left, [this, &c] { on_quantum_expired(c); });
  if (cfg_.context_switch_cost.ns > 0) {
    start_segment(c, cfg_.context_switch_cost, CpuState::Kernel,
                  /*is_ctx=*/true);
  } else {
    run_current(c);
  }
}

void Scheduler::cpu_try_dispatch(Cpu& c) {
  if (c.in_irq || c.current != nullptr) return;
  if (SimThread* t = pick_ready(c.id)) {
    dispatch(c, t);
  } else {
    stats_.set_cpu_state(c.id, CpuState::Idle, simu_.now());
  }
}

void Scheduler::start_segment(Cpu& c, sim::Duration d, CpuState state,
                              bool is_ctx) {
  assert(d.ns > 0);
  c.seg_active = true;
  c.seg_is_ctx = is_ctx;
  c.seg_state = state;
  c.seg_left = d;
  c.run_start = simu_.now();
  stats_.set_cpu_state(c.id, state, simu_.now());
  c.seg_ev.cancel();
  c.seg_ev = simu_.after(d, [this, &c] { on_segment_done(c); });
}

void Scheduler::account_segment(Cpu& c, sim::Duration ran) {
  if (ran.ns <= 0 || c.current == nullptr) return;
  if (c.seg_state == CpuState::User) {
    c.current->user_time += ran;
  } else {
    c.current->system_time += ran;
  }
}

void Scheduler::on_segment_done(Cpu& c) {
  account_segment(c, simu_.now() - c.run_start);
  c.seg_active = false;
  run_current(c);
}

void Scheduler::pause_segment(Cpu& c) {
  if (!c.seg_active) return;
  const sim::Duration elapsed = simu_.now() - c.run_start;
  account_segment(c, elapsed);
  c.seg_left -= elapsed;
  if (c.seg_left.ns < 0) c.seg_left = {};
  c.quantum_left -= elapsed;
  c.seg_ev.cancel();
  c.seg_active = false;
}

void Scheduler::resume_segment(Cpu& c) {
  assert(c.current != nullptr);
  if (c.seg_left.ns <= 0) {
    // The segment had (sub-ns) nothing left; treat as completed.
    stats_.set_cpu_state(c.id, c.seg_state, simu_.now());
    run_current(c);
    return;
  }
  c.seg_active = true;
  c.run_start = simu_.now();
  stats_.set_cpu_state(c.id, c.seg_state, simu_.now());
  c.seg_ev.cancel();
  c.seg_ev = simu_.after(c.seg_left, [this, &c] { on_segment_done(c); });
  sim::Duration q = c.quantum_left;
  if (q.ns < 0) q = {};
  c.quantum_ev.cancel();
  c.quantum_ev = simu_.after(q, [this, &c] { on_quantum_expired(c); });
}

void Scheduler::on_quantum_expired(Cpu& c) {
  if (c.in_irq || c.current == nullptr) return;
  if (!someone_waiting_for(c)) {
    // Nobody to run: grant a fresh quantum in place.
    c.quantum_left = cfg_.quantum;
    c.quantum_ev.cancel();
    c.quantum_ev =
        simu_.after(c.quantum_left, [this, &c] { on_quantum_expired(c); });
    return;
  }
  preempt(c);
}

void Scheduler::preempt(Cpu& c) {
  pause_segment(c);
  c.quantum_ev.cancel();
  SimThread* t = c.current;
  if (!c.seg_is_ctx) {
    t->remaining = c.seg_left;
    t->remaining_is_kernel = (c.seg_state == CpuState::Kernel);
    t->has_remaining = c.seg_left.ns > 0;
  }
  t->interactive = false;  // descheduled involuntarily: a CPU hog
  t->state = ThreadState::Ready;
  t->ready_since = simu_.now();
  t->cpu = -1;
  c.current = nullptr;
  enqueue_tail(t);
  cpu_try_dispatch(c);
}

void Scheduler::run_current(Cpu& c) {
  SimThread* t = c.current;
  assert(t != nullptr);
  for (;;) {
    if (t->has_remaining) {
      const sim::Duration d = t->remaining;
      const bool kernel = t->remaining_is_kernel;
      t->has_remaining = false;
      if (d.ns > 0) {
        start_segment(c, d, kernel ? CpuState::Kernel : CpuState::User,
                      /*is_ctx=*/false);
        return;
      }
      // fully consumed: fall through to fetch the next action
    }
    const Action a = t->advance();
    if (const auto* comp = std::get_if<Compute>(&a)) {
      if (comp->amount.ns <= 0) continue;
      start_segment(c, comp->amount, CpuState::User, false);
      return;
    }
    if (const auto* compk = std::get_if<ComputeKernel>(&a)) {
      if (compk->amount.ns <= 0) continue;
      start_segment(c, compk->amount, CpuState::Kernel, false);
      return;
    }
    if (const auto* sl = std::get_if<SleepFor>(&a)) {
      if (sl->amount.ns <= 0) {
        deschedule(c, ThreadState::Ready, /*voluntary=*/true);
        return;
      }
      const sim::TimePoint when = round_up_tick(simu_.now() + sl->amount);
      t->sleep_event = simu_.at(when, [this, t] { wake(t); });
      deschedule(c, ThreadState::Sleeping, true);
      return;
    }
    if (const auto* su = std::get_if<SleepUntil>(&a)) {
      sim::TimePoint when = su->when;
      if (when < simu_.now()) when = simu_.now();
      when = round_up_tick(when);
      t->sleep_event = simu_.at(when, [this, t] { wake(t); });
      deschedule(c, ThreadState::Sleeping, true);
      return;
    }
    if (const auto* w = std::get_if<WaitOn>(&a)) {
      // Register on the wait queue BEFORE redispatching the CPU: with a
      // zero context-switch cost the next thread runs synchronously and
      // might notify this queue immediately.
      t->waiting_on = w->wq;
      w->wq->add(t);
      deschedule(c, ThreadState::Blocked, true);
      return;
    }
    if (std::holds_alternative<YieldCpu>(a)) {
      deschedule(c, ThreadState::Ready, /*voluntary=*/false);
      return;
    }
    // ExitThread
    deschedule(c, ThreadState::Finished, true);
    return;
  }
}

void Scheduler::deschedule(Cpu& c, ThreadState new_state, bool voluntary) {
  SimThread* t = c.current;
  assert(!c.seg_active);  // caller reaches here only between segments
  c.quantum_ev.cancel();
  t->cpu = -1;
  c.current = nullptr;
  t->interactive = voluntary;
  t->state = new_state;
  switch (new_state) {
    case ThreadState::Ready:
      // Voluntary yield (or sleep(0)): runnable again at the tail.
      t->ready_since = simu_.now();
      enqueue_tail(t);
      break;
    case ThreadState::Sleeping:
    case ThreadState::Blocked:
      stats_.on_thread_unrunnable(t->kernel_thread());
      break;
    case ThreadState::Finished:
      stats_.on_thread_unrunnable(t->kernel_thread());
      stats_.on_thread_exited(t->kernel_thread());
      break;
    case ThreadState::Running:
      assert(false);
      break;
  }
  cpu_try_dispatch(c);
}

// --- interrupts ---------------------------------------------------------------

void Scheduler::request_irq(CpuId cpu, sim::Duration cost, IrqBody body) {
  Cpu& c = cpus_[static_cast<std::size_t>(cpu)];
  c.irq_q.push_back(IrqJob{cost, std::move(body)});
  if (!c.in_irq) begin_irq(c);
}

void Scheduler::begin_irq(Cpu& c) {
  c.in_irq = true;
  if (c.seg_active) pause_segment(c);
  c.quantum_ev.cancel();
  stats_.set_cpu_state(c.id, CpuState::Irq, simu_.now());
  run_next_irq(c);
}

void Scheduler::run_next_irq(Cpu& c) {
  assert(!c.irq_q.empty());
  const sim::Duration cost = c.irq_q.front().cost;
  c.irq_ev = simu_.after(cost, [this, &c] {
    IrqJob job = std::move(c.irq_q.front());
    c.irq_q.pop_front();
    if (job.body) job.body();
    if (!c.irq_q.empty()) {
      run_next_irq(c);
      return;
    }
    c.in_irq = false;
    if (c.current != nullptr) {
      resume_segment(c);
    } else {
      stats_.set_cpu_state(c.id, CpuState::Idle, simu_.now());
      cpu_try_dispatch(c);
    }
  });
}

sim::TimePoint Scheduler::round_up_tick(sim::TimePoint t) const {
  const std::int64_t tick = cfg_.tick().ns;
  return sim::TimePoint{(t.ns + tick - 1) / tick * tick};
}

// --- misc ----------------------------------------------------------------------

bool Scheduler::cpu_idle(CpuId cpu) const {
  const Cpu& c = cpus_[static_cast<std::size_t>(cpu)];
  return c.current == nullptr && !c.in_irq;
}

bool Scheduler::cpu_in_irq(CpuId cpu) const {
  return cpus_[static_cast<std::size_t>(cpu)].in_irq;
}

SimThread* Scheduler::running_on(CpuId cpu) const {
  return cpus_[static_cast<std::size_t>(cpu)].current;
}

}  // namespace rdmamon::os
