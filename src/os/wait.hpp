// Kernel wait queues: the blocking primitive behind socket receive,
// completion queues, worker pools, and every other "wait for X" in the
// simulated OS.
#pragma once

#include <deque>

namespace rdmamon::os {

class SimThread;

/// FIFO list of threads blocked on some condition. notify_one()/notify_all()
/// hand the thread back to its scheduler (wakeups may be spurious; waiters
/// must re-check their predicate).
class WaitQueue {
 public:
  /// Adds a blocked thread (scheduler-internal; called when a thread's
  /// WaitOn action is executed).
  void add(SimThread* t) { waiters_.push_back(t); }

  /// Removes a specific thread (e.g. thread killed while blocked).
  void remove(SimThread* t);

  /// Wakes the longest-waiting thread, if any.
  void notify_one();

  /// Wakes every waiting thread.
  void notify_all();

  bool empty() const { return waiters_.empty(); }
  std::size_t size() const { return waiters_.size(); }

 private:
  std::deque<SimThread*> waiters_;
};

}  // namespace rdmamon::os
