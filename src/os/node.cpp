#include "os/node.hpp"

namespace rdmamon::os {

Node::Node(sim::Simulation& simu, NodeConfig cfg)
    : simu_(simu), cfg_(std::move(cfg)),
      stats_(cfg_.cpus, cfg_.load_window, cfg_.memory_bytes),
      procfs_(*this) {
  sched_ = std::make_unique<Scheduler>(simu_, *this, stats_, cfg_);
  irq_ = std::make_unique<IrqController>(*sched_, cfg_);
  irq_->start_ksoftirqd();
  if (cfg_.timer_irq) schedule_timer_tick();
}

void Node::schedule_timer_tick() {
  simu_.after(cfg_.tick(), [this] {
    irq_->raise(0, IrqType::Timer, nullptr);
    schedule_timer_tick();
  });
}

}  // namespace rdmamon::os
