// Interrupt controller: hardware IRQ bookkeeping (the irq_stat structure
// the paper's e-RDMA-Sync scheme exploits) plus the softirq / ksoftirqd
// deferred-work path that couples network processing to scheduler load.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "os/types.hpp"
#include "os/wait.hpp"
#include "sim/time.hpp"

namespace rdmamon::os {

class Scheduler;

/// Deferrable work item queued for ksoftirqd.
struct SoftirqItem {
  sim::Duration cost;
  std::function<void()> fn;
};

class IrqController {
 public:
  IrqController(Scheduler& sched, const NodeConfig& cfg);

  /// Raises a hardware interrupt on `cpu`. The handler occupies the CPU
  /// for cfg.irq_handler_cost (plus `extra_cost`), then `body` runs in
  /// handler context. The pending count for (cpu, type) is visible from
  /// raise until the handler completes — exactly what a remote RDMA read
  /// of irq_stat can observe mid-flight.
  void raise(CpuId cpu, IrqType type, std::function<void()> body,
             sim::Duration extra_cost = {});

  /// Queues deferred work for `cpu`'s ksoftirqd (normal-priority kernel
  /// thread; under CPU load it waits in the run queue like anyone else).
  void raise_softirq(CpuId cpu, SoftirqItem item);

  // --- irq_stat view -------------------------------------------------------
  /// Hardware interrupts currently pending (queued or in service) on `cpu`.
  int pending_hard(CpuId cpu, IrqType type) const;
  int pending_hard_total(CpuId cpu) const;
  /// Deferred softirq backlog length on `cpu`.
  std::size_t softirq_backlog(CpuId cpu) const;
  /// Cumulative count of hardware interrupts raised.
  std::uint64_t raised_count(CpuId cpu, IrqType type) const;

  /// Number of hardware interrupts raised on `cpu` within the trailing
  /// `window`. Models what a synchronized (/proc) reader can still catch:
  /// the read path spins on the 2.4 global IRQ lock until handlers drain,
  /// so only arrivals during the final copy-out window are visible.
  int raised_within(CpuId cpu, sim::Duration window) const;

  /// The transient irq_stat view a lock-free RDMA READ observes at the
  /// DMA instant: in-service + queued hard interrupts plus a capped
  /// indicator of deferred (softirq) backlog — pending work a
  /// synchronized reader never sees.
  int pending_dma_view(CpuId cpu) const;

  /// Spawns the per-CPU ksoftirqd threads. Called once by Node after the
  /// scheduler exists.
  void start_ksoftirqd();

  /// Wait queue ksoftirqd sleeps on when the backlog is empty.
  WaitQueue& softirq_waitqueue(CpuId cpu) {
    return per_cpu_[static_cast<std::size_t>(cpu)].soft_wq;
  }

  /// Dequeues the next deferred item (ksoftirqd only). Precondition:
  /// softirq_backlog(cpu) > 0.
  SoftirqItem pop_softirq(CpuId cpu);

 private:
  struct PerCpu {
    std::array<int, kIrqTypes> pending{};
    std::array<std::uint64_t, kIrqTypes> raised{};
    mutable std::deque<sim::TimePoint> recent_raises;  // trimmed lazily
    std::deque<SoftirqItem> soft_q;
    WaitQueue soft_wq;
  };

  Scheduler& sched_;
  const NodeConfig cfg_;
  std::vector<PerCpu> per_cpu_;
};

}  // namespace rdmamon::os
