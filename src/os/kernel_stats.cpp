#include "os/kernel_stats.hpp"

#include <cassert>
#include <cmath>

namespace rdmamon::os {

CpuAccounting::CpuAccounting(sim::Duration ema_window)
    : window_(ema_window) {}

double CpuAccounting::decay(sim::Duration dt) const {
  return std::exp(-static_cast<double>(dt.ns) /
                  static_cast<double>(window_.ns));
}

void CpuAccounting::set_state(CpuState s, sim::TimePoint t) {
  assert(t >= last_);
  const sim::Duration dt = t - last_;
  if (dt.ns > 0) {
    // Fold the elapsed interval into the EMA: the signal was constant
    // (busy or idle) over [last_, t].
    const double k = decay(dt);
    const double level = state_ == CpuState::Idle ? 0.0 : 1.0;
    ema_ = ema_ * k + level * (1.0 - k);
    switch (state_) {
      case CpuState::Idle: idle_ += dt; break;
      case CpuState::User: user_ += dt; break;
      case CpuState::Kernel: system_ += dt; break;
      case CpuState::Irq: irq_ += dt; break;
    }
  }
  last_ = t;
  state_ = s;
}

double CpuAccounting::utilization(sim::TimePoint t) const {
  const sim::Duration dt = t - last_;
  if (dt.ns <= 0) return ema_;
  const double k = decay(dt);
  const double level = state_ == CpuState::Idle ? 0.0 : 1.0;
  return ema_ * k + level * (1.0 - k);
}

KernelStats::KernelStats(int cpus, sim::Duration ema_window,
                         std::uint64_t memory_bytes)
    : window_(ema_window), mem_total_(memory_bytes) {
  cpus_.assign(static_cast<std::size_t>(cpus), CpuAccounting(ema_window));
}

void KernelStats::set_cpu_state(CpuId cpu, CpuState s, sim::TimePoint t) {
  cpus_[static_cast<std::size_t>(cpu)].set_state(s, t);
}

double KernelStats::cpu_utilization(CpuId cpu, sim::TimePoint t) const {
  return cpus_[static_cast<std::size_t>(cpu)].utilization(t);
}

double KernelStats::cpu_load(sim::TimePoint t) const {
  double sum = 0.0;
  for (const auto& c : cpus_) sum += c.utilization(t);
  return sum / static_cast<double>(cpus_.size());
}

void KernelStats::on_thread_created(bool kernel) {
  (kernel ? nr_threads_kernel_ : nr_threads_user_)++;
}

void KernelStats::on_thread_exited(bool kernel) {
  (kernel ? nr_threads_kernel_ : nr_threads_user_)--;
}

void KernelStats::on_thread_runnable(bool kernel) {
  (kernel ? nr_running_kernel_ : nr_running_user_)++;
}

void KernelStats::on_thread_unrunnable(bool kernel) {
  (kernel ? nr_running_kernel_ : nr_running_user_)--;
  assert(nr_running_user_ >= 0 && nr_running_kernel_ >= 0);
}

void KernelStats::alloc_memory(std::uint64_t bytes) {
  mem_used_ += bytes;
  if (mem_used_ > mem_total_) mem_used_ = mem_total_;  // swap not modelled
}

void KernelStats::free_memory(std::uint64_t bytes) {
  mem_used_ = bytes > mem_used_ ? 0 : mem_used_ - bytes;
}

void KernelStats::on_net_bytes(std::uint64_t bytes, sim::TimePoint t) {
  const sim::Duration dt = t - net_last_;
  if (dt.ns > 0) {
    const double k = std::exp(-static_cast<double>(dt.ns) /
                              static_cast<double>(window_.ns));
    net_rate_ema_ *= k;
    net_last_ = t;
  }
  // An impulse of `bytes` spread over the EMA window.
  net_rate_ema_ +=
      static_cast<double>(bytes) / (static_cast<double>(window_.ns) / 1e9);
}

double KernelStats::net_rate(sim::TimePoint t) const {
  const sim::Duration dt = t - net_last_;
  if (dt.ns <= 0) return net_rate_ema_;
  const double k = std::exp(-static_cast<double>(dt.ns) /
                            static_cast<double>(window_.ns));
  return net_rate_ema_ * k;
}

}  // namespace rdmamon::os
