#include "os/interrupts.hpp"

#include <cassert>

#include <algorithm>

#include "os/scheduler.hpp"

namespace rdmamon::os {

IrqController::IrqController(Scheduler& sched, const NodeConfig& cfg)
    : sched_(sched), cfg_(cfg) {
  per_cpu_.resize(static_cast<std::size_t>(cfg_.cpus));
}

void IrqController::raise(CpuId cpu, IrqType type, std::function<void()> body,
                          sim::Duration extra_cost) {
  auto& pc = per_cpu_[static_cast<std::size_t>(cpu)];
  const auto ti = static_cast<std::size_t>(type);
  ++pc.pending[ti];
  ++pc.raised[ti];
  pc.recent_raises.push_back(sched_.simu().now());
  // Trim anything older than 1 ms; readers only ask about tiny windows.
  const sim::TimePoint horizon = sched_.simu().now() - sim::msec(1);
  while (!pc.recent_raises.empty() && pc.recent_raises.front() < horizon) {
    pc.recent_raises.pop_front();
  }
  sched_.request_irq(
      cpu, cfg_.irq_handler_cost + extra_cost,
      [this, cpu, type, body = std::move(body)] {
        auto& p = per_cpu_[static_cast<std::size_t>(cpu)];
        --p.pending[static_cast<std::size_t>(type)];
        assert(p.pending[static_cast<std::size_t>(type)] >= 0);
        if (body) body();
      });
}

void IrqController::raise_softirq(CpuId cpu, SoftirqItem item) {
  auto& pc = per_cpu_[static_cast<std::size_t>(cpu)];
  pc.soft_q.push_back(std::move(item));
  pc.soft_wq.notify_one();  // kick ksoftirqd if it is sleeping
}

int IrqController::pending_hard(CpuId cpu, IrqType type) const {
  return per_cpu_[static_cast<std::size_t>(cpu)]
      .pending[static_cast<std::size_t>(type)];
}

int IrqController::pending_hard_total(CpuId cpu) const {
  const auto& pc = per_cpu_[static_cast<std::size_t>(cpu)];
  int sum = 0;
  for (int v : pc.pending) sum += v;
  return sum;
}

std::size_t IrqController::softirq_backlog(CpuId cpu) const {
  return per_cpu_[static_cast<std::size_t>(cpu)].soft_q.size();
}

SoftirqItem IrqController::pop_softirq(CpuId cpu) {
  auto& pc = per_cpu_[static_cast<std::size_t>(cpu)];
  assert(!pc.soft_q.empty());
  SoftirqItem item = std::move(pc.soft_q.front());
  pc.soft_q.pop_front();
  return item;
}

std::uint64_t IrqController::raised_count(CpuId cpu, IrqType type) const {
  return per_cpu_[static_cast<std::size_t>(cpu)]
      .raised[static_cast<std::size_t>(type)];
}

int IrqController::raised_within(CpuId cpu, sim::Duration window) const {
  const auto& pc = per_cpu_[static_cast<std::size_t>(cpu)];
  const sim::TimePoint since = sched_.simu().now() - window;
  int n = 0;
  for (auto it = pc.recent_raises.rbegin(); it != pc.recent_raises.rend();
       ++it) {
    if (*it < since) break;
    ++n;
  }
  return n;
}

int IrqController::pending_dma_view(CpuId cpu) const {
  const auto& pc = per_cpu_[static_cast<std::size_t>(cpu)];
  int hard = 0;
  for (int v : pc.pending) hard += v;
  const int soft = static_cast<int>(pc.soft_q.size());
  return hard + std::min(soft, 4);
}

namespace {

/// ksoftirqd body: drain deferred items in batches, yielding between
/// batches so it round-robins with (and under load waits behind) runnable
/// application threads — the receive-livelock behaviour behind Fig 3.
Program ksoftirqd_body(SimThread& self, IrqController* irq, CpuId cpu,
                       int batch) {
  auto& controller = *irq;
  for (;;) {
    while (controller.softirq_backlog(cpu) == 0) {
      co_await WaitOn{&controller.softirq_waitqueue(cpu)};
    }
    int done = 0;
    while (controller.softirq_backlog(cpu) > 0 && done < batch) {
      SoftirqItem item = controller.pop_softirq(cpu);
      co_await ComputeKernel{item.cost};
      if (item.fn) item.fn();
      ++done;
    }
    if (controller.softirq_backlog(cpu) > 0) {
      co_await YieldCpu{};
    }
  }
  (void)self;
}

}  // namespace

void IrqController::start_ksoftirqd() {
  for (int cpu = 0; cpu < cfg_.cpus; ++cpu) {
    SpawnOptions opts;
    opts.kernel_thread = true;
    opts.affinity = cpu;
    opts.interactive_allowed = false;
    sched_.spawn("ksoftirqd/" + std::to_string(cpu),
                 [this, cpu, batch = cfg_.softirq_batch](SimThread& t) {
                   return ksoftirqd_body(t, this, cpu, batch);
                 },
                 opts);
  }
}

}  // namespace rdmamon::os
