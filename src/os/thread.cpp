#include "os/thread.hpp"

#include <cassert>

#include "os/wait.hpp"

namespace rdmamon::os {

SimThread::SimThread(ThreadId tid, std::string name, Priority prio,
                     Node& node, Scheduler& sched)
    : tid_(tid), name_(std::move(name)), prio_(prio), node_(node),
      sched_(sched) {}

void SimThread::attach_factory(std::function<Program(SimThread&)> factory) {
  assert(!root_.valid());
  factory_ = std::move(factory);
  root_ = factory_(*this);
  root_.promise().thread = this;
  stack_.push_back(root_.handle());
}

Action SimThread::advance() {
  // Guard against runaway zero-time loops in thread bodies.
  for (int hops = 0; hops < 1'000'000; ++hops) {
    if (stack_.empty()) return ExitThread{};
    Program::Handle top = stack_.back();
    top.resume();
    if (top.done()) {
      // Subprogram (or root) finished. Pop it; its frame is destroyed by
      // the parent awaiter when the parent resumes (or by root_'s dtor).
      stack_.pop_back();
      if (stack_.empty()) return ExitThread{};
      continue;  // resume the parent next iteration
    }
    auto& p = top.promise();
    if (p.has_pending) {
      p.has_pending = false;
      return p.pending;
    }
    // No action pending: the coroutine suspended to push a child program;
    // the child is now on top of the stack. Loop to resume it.
    assert(stack_.back() != top);
  }
  assert(false && "thread body made no progress (infinite subprogram loop?)");
  return ExitThread{};
}

void ProgramPromise::ProgramAwaiter::await_suspend(
    std::coroutine_handle<>) noexcept {
  SimThread* t = parent->thread;
  child.promise().thread = t;
  t->push_frame(child.handle());
}

void WaitQueue::remove(SimThread* t) {
  for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
    if (*it == t) {
      waiters_.erase(it);
      return;
    }
  }
}

}  // namespace rdmamon::os
