// A simulated kernel-schedulable thread: a coroutine frame stack plus the
// scheduling state the kernel keeps per task.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "os/program.hpp"
#include "os/types.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace rdmamon::os {

class Scheduler;
class Node;
class WaitQueue;

class SimThread {
 public:
  SimThread(ThreadId tid, std::string name, Priority prio, Node& node,
            Scheduler& sched);

  // Not movable/copyable: coroutine promises hold stable pointers to it.
  SimThread(const SimThread&) = delete;
  SimThread& operator=(const SimThread&) = delete;

  /// Attaches the body by invoking `factory(*this)`. The factory object is
  /// kept alive for the thread's lifetime: a capturing lambda coroutine
  /// stores its captures in the lambda object, NOT the coroutine frame, so
  /// the callable must outlive every resume. Called once by Scheduler::spawn.
  void attach_factory(std::function<Program(SimThread&)> factory);

  /// Runs the coroutine stack until it produces the next Action (resuming
  /// through finished subprograms). Returns ExitThread when the root body
  /// completes. Scheduler-internal.
  Action advance();

  /// Pushes a nested program frame (called from Program's awaiter).
  void push_frame(Program::Handle h) { stack_.push_back(h); }

  // --- identity & config -------------------------------------------------
  ThreadId tid() const { return tid_; }
  const std::string& name() const { return name_; }
  Priority priority() const { return prio_; }
  Node& node() { return node_; }
  Scheduler& scheduler() { return sched_; }

  /// Kernel helper threads (ksoftirqd) are excluded from the user
  /// nr_running count exported via /proc.
  bool kernel_thread() const { return kernel_thread_; }
  void set_kernel_thread(bool v) { kernel_thread_ = v; }

  // --- scheduler state (owned by Scheduler, public within the OS) --------
  ThreadState state = ThreadState::Ready;

  /// True when the last deschedule was voluntary (sleep/block): the
  /// scheduler's interactivity heuristic, standing in for the 2.4
  /// counter/goodness bonus for sleepers.
  bool interactive = true;

  /// When false the thread never receives the interactive wake bonus,
  /// regardless of how it last descheduled. Used for ksoftirqd, which the
  /// 2.4-era kernel deliberately deprioritises (receive-livelock defence):
  /// deferred network work must queue behind runnable application threads.
  bool interactive_allowed = true;

  /// Partially-executed compute left over after a preemption.
  sim::Duration remaining{};
  bool remaining_is_kernel = false;
  bool has_remaining = false;

  /// CPU currently running this thread, or -1.
  CpuId cpu = -1;

  /// Pin to one CPU (-1 = run anywhere). Set at spawn; used by ksoftirqd.
  CpuId affinity = -1;

  /// Wait queue this thread is blocked on (for targeted removal).
  WaitQueue* waiting_on = nullptr;

  /// Pending sleep wakeup (cancellable in O(1) if the thread is killed;
  /// the handle goes inert on its own once the wakeup fires).
  sim::EventHandle sleep_event;

  /// Set when the thread became Ready; measures run-queue wait.
  sim::TimePoint ready_since{};

  // --- statistics ---------------------------------------------------------
  sim::Duration user_time{};
  sim::Duration system_time{};
  sim::OnlineStats runqueue_wait_ns;  ///< ready -> running latency samples

 private:
  ThreadId tid_;
  std::string name_;
  Priority prio_;
  Node& node_;
  Scheduler& sched_;
  bool kernel_thread_ = false;

  std::function<Program(SimThread&)> factory_;  // owns the body's closure
  Program root_;
  std::vector<Program::Handle> stack_;  // non-owning; frames owned by awaiters
};

}  // namespace rdmamon::os
