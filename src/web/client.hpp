// Closed-loop client emulators (the paper drives RUBiS with eight threads
// on each of eight client nodes).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "lb/dispatcher.hpp"
#include "net/fabric.hpp"
#include "os/node.hpp"
#include "sim/random.hpp"
#include "web/metrics.hpp"
#include "web/request.hpp"

namespace rdmamon::web {

/// Produces the next request of a workload (demands only; id/timestamps
/// are filled in by the client thread).
using RequestGenerator = std::function<Request(sim::Rng&)>;

struct ClientGroupConfig {
  int threads_per_node = 8;
  sim::Duration think = sim::msec(20);
  std::size_t request_bytes = 512;
  /// Telemetry label of this group's exported percentiles
  /// (web.response.*{group=...}). ClusterTestbed fills it from the group's
  /// creation order when left empty.
  std::string name = "g0";
};

/// A set of client threads across one or more client nodes, all running
/// the same generator and recording into one ResponseStats.
class ClientGroup {
 public:
  ClientGroup(net::Fabric& fabric, lb::Dispatcher& dispatcher,
              std::vector<os::Node*> client_nodes, RequestGenerator gen,
              ClientGroupConfig cfg, sim::Rng seed_rng);

  ResponseStats& stats() { return stats_; }
  const ResponseStats& stats() const { return stats_; }

 private:
  os::Program client_body(os::SimThread& self, net::Socket* sock,
                          std::shared_ptr<sim::Rng> rng);

  lb::Dispatcher* dispatcher_;
  RequestGenerator gen_;
  ClientGroupConfig cfg_;
  ResponseStats stats_;
  /// Publishes stats_ percentiles at snapshot time.
  telemetry::ScopedCollector collector_;
  static std::uint64_t next_request_id_;
};

}  // namespace rdmamon::web
