#include "web/client.hpp"

#include <any>

namespace rdmamon::web {

std::uint64_t ClientGroup::next_request_id_ = 1;

ClientGroup::ClientGroup(net::Fabric& fabric, lb::Dispatcher& dispatcher,
                         std::vector<os::Node*> client_nodes,
                         RequestGenerator gen, ClientGroupConfig cfg,
                         sim::Rng seed_rng)
    : dispatcher_(&dispatcher), gen_(std::move(gen)), cfg_(cfg) {
  for (os::Node* node : client_nodes) {
    for (int i = 0; i < cfg_.threads_per_node; ++i) {
      net::Socket& sock = dispatcher.add_client(*node);
      auto rng = std::make_shared<sim::Rng>(seed_rng.split());
      node->spawn("client" + std::to_string(i),
                  [this, sock = &sock, rng](os::SimThread& t) {
                    return client_body(t, sock, rng);
                  });
    }
  }
  // Re-export this group's response percentiles at snapshot time.
  collector_.bind(fabric.simu(), [this](telemetry::Registry& reg) {
    stats_.export_to(reg, telemetry::Labels{{"group", cfg_.name}});
  });
}

os::Program ClientGroup::client_body(os::SimThread& self, net::Socket* sock,
                                     std::shared_ptr<sim::Rng> rng) {
  sim::Simulation& simu = self.node().simu();
  for (;;) {
    Request req = gen_(*rng);
    req.id = next_request_id_++;
    req.request_bytes = cfg_.request_bytes;
    req.created_at = simu.now();
    co_await sock->send(self, req.request_bytes, req);
    net::Message m;
    co_await sock->recv(self, m);
    const Reply reply = std::any_cast<Reply>(m.payload);
    if (reply.rejected) {
      stats_.record_rejected();
    } else {
      stats_.record(reply.query_class, simu.now() - req.created_at);
    }
    // Exponential think time keeps arrivals from phase-locking.
    co_await os::SleepFor{sim::nsec(static_cast<std::int64_t>(
        rng->exponential(static_cast<double>(cfg_.think.ns))))};
  }
}

}  // namespace rdmamon::web
