// The paper's testbed in one object: a front-end dispatcher node, eight
// dual-CPU back-end web servers, client nodes, the chosen monitoring
// scheme wiring, and the WebSphere-style load balancer. Every
// application-level experiment (Table 1, Figs 7-9) builds one of these.
#pragma once

#include <memory>
#include <vector>

#include "cluster/scaleout.hpp"
#include "lb/admission.hpp"
#include "lb/balancer.hpp"
#include "lb/dispatcher.hpp"
#include "monitor/scheme.hpp"
#include "net/fabric.hpp"
#include "os/node.hpp"
#include "web/client.hpp"
#include "web/server.hpp"
#include "workload/rubis.hpp"
#include "workload/zipf.hpp"

namespace rdmamon::web {

struct ClusterConfig {
  int backends = 8;
  /// Front-end dispatcher/balancer count. 1 (default) builds the
  /// paper's single-front-end testbed exactly as before; > 1 builds the
  /// scale-out plane: M front ends partition polling by consistent
  /// hash, gossip shard views over one-sided READs, and each run their
  /// own dispatcher (client groups are assigned round-robin).
  int frontends = 1;
  /// Scale-out tuning (gossip cadence, staleness bound, ring vnodes).
  /// Ignored when frontends == 1.
  cluster::ScaleOutConfig scaleout;
  monitor::Scheme scheme = monitor::Scheme::RdmaSync;
  /// T: async schemes' back-end update period.
  sim::Duration monitor_period = sim::msec(50);
  /// Load-fetching granularity of the balancer's poller.
  sim::Duration lb_granularity = sim::msec(50);
  ServerConfig server;
  os::NodeConfig backend_node;
  os::NodeConfig frontend_node;
  os::NodeConfig client_node;
  net::FabricConfig fabric;
  /// When set (>= 0), enables admission control at this load threshold.
  double admission_threshold = -1.0;
  std::uint64_t seed = 42;

  /// Monitoring failure handling (per fetch attempt; see MonitorConfig).
  sim::Duration fetch_timeout = sim::msec(200);
  int fetch_retries = 2;
  sim::Duration retry_backoff = sim::msec(2);
  /// Failure-detector thresholds of the balancer's health tracking.
  lb::HealthConfig health{};
  /// Poll strategy of the balancer's refresh loop (scatter by default;
  /// Sequential reproduces the original O(N) sweep).
  lb::PollMode lb_poll_mode = lb::PollMode::Scatter;
  /// Verbs fast-path tuning of the monitoring channels (signal-every-k,
  /// inflight windows, shared contexts, CQ moderation). Applied in both
  /// single-front-end and scale-out mode; the defaults keep the
  /// historical behaviour byte-identical.
  net::VerbsTuning verbs;
  /// Tenant identity of the monitoring plane (see MonitorConfig::tenant):
  /// with fabric QoS enabled, give the plane a weighted spec under this
  /// id so its READs are protected from noisy neighbors. 0 = untagged.
  net::TenantId monitor_tenant = 0;

  ClusterConfig() {
    backend_node.name = "backend";
    frontend_node.name = "frontend";
    client_node.name = "client";
    // The paper's client nodes are bigger (2x 3.0 GHz, 2 GB).
    client_node.memory_bytes = 2ull << 30;
  }
};

class ClusterTestbed {
 public:
  ClusterTestbed(sim::Simulation& simu, ClusterConfig cfg);
  ~ClusterTestbed();

  ClusterTestbed(const ClusterTestbed&) = delete;
  ClusterTestbed& operator=(const ClusterTestbed&) = delete;

  /// Adds a group of closed-loop clients running `gen` on `nodes` fresh
  /// client nodes. Returns the group (for its ResponseStats).
  ClientGroup& add_clients(int nodes, RequestGenerator gen,
                           ClientGroupConfig ccfg = {});

  sim::Simulation& simu() { return simu_; }
  net::Fabric& fabric() { return *fabric_; }
  os::Node& frontend(int i = 0) {
    return *frontends_[static_cast<std::size_t>(i)];
  }
  int frontend_count() const { return static_cast<int>(frontends_.size()); }
  os::Node& backend(int i) { return *backends_[static_cast<std::size_t>(i)]; }
  int backend_count() const { return static_cast<int>(backends_.size()); }
  std::vector<os::Node*> backend_ptrs() {
    std::vector<os::Node*> out;
    for (auto& b : backends_) out.push_back(b.get());
    return out;
  }
  WebServer& server(int i) { return *servers_[static_cast<std::size_t>(i)]; }
  lb::LoadBalancer& balancer(int i = 0) {
    return plane_ ? plane_->frontend(i).balancer() : *lb_;
  }
  lb::Dispatcher& dispatcher(int i = 0) {
    return *dispatchers_[static_cast<std::size_t>(i)];
  }
  /// The scale-out plane; nullptr in the single-front-end testbed.
  cluster::ScaleOutPlane* plane() { return plane_.get(); }
  lb::AdmissionController* admission() { return admission_.get(); }
  const ClusterConfig& config() const { return cfg_; }

 private:
  sim::Simulation& simu_;
  ClusterConfig cfg_;
  sim::Rng seed_rng_;
  std::unique_ptr<net::Fabric> fabric_;
  std::vector<std::unique_ptr<os::Node>> frontends_;
  std::vector<std::unique_ptr<os::Node>> backends_;
  std::vector<std::unique_ptr<os::Node>> clients_;
  std::vector<std::unique_ptr<WebServer>> servers_;
  std::unique_ptr<lb::LoadBalancer> lb_;  ///< single-front-end mode only
  std::unique_ptr<cluster::ScaleOutPlane> plane_;  ///< frontends > 1 only
  std::vector<std::unique_ptr<lb::Dispatcher>> dispatchers_;
  std::unique_ptr<lb::AdmissionController> admission_;
  std::vector<std::unique_ptr<ClientGroup>> groups_;
};

/// Generator for the RUBiS browsing mix (all eight query classes).
RequestGenerator make_rubis_generator();

/// Generator for a single RUBiS query class (per-class latency probes).
RequestGenerator make_rubis_generator(workload::RubisQuery q);

/// Generator for Zipf static content (shares the trace across clients).
RequestGenerator make_zipf_generator(
    std::shared_ptr<const workload::ZipfTrace> trace);

}  // namespace rdmamon::web
