#include "web/server.hpp"

#include <any>

namespace rdmamon::web {

WebServer::WebServer(net::Fabric& fabric, os::Node& node, ServerConfig cfg)
    : fabric_(&fabric), node_(&node), cfg_(cfg) {}

void WebServer::listen(net::Socket& server_end) {
  node_->spawn("httpd-rx", [this, sock = &server_end](os::SimThread& t) {
    return rx_body(t, sock);
  });
  if (!workers_started_) {
    workers_started_ = true;
    for (int i = 0; i < cfg_.workers; ++i) {
      node_->spawn("httpd-w" + std::to_string(i),
                   [this](os::SimThread& t) { return worker_body(t); });
    }
  }
}

os::Program WebServer::rx_body(os::SimThread& self, net::Socket* sock) {
  for (;;) {
    net::Message m;
    co_await sock->recv(self, m);
    queue_.push_back(
        PendingWork{std::any_cast<Request>(m.payload), sock});
    work_wq_.notify_one();
  }
}

os::Program WebServer::worker_body(os::SimThread& self) {
  for (;;) {
    while (queue_.empty()) co_await os::WaitOn{&work_wq_};
    PendingWork work = std::move(queue_.front());
    queue_.pop_front();
    node_->stats().alloc_memory(cfg_.per_request_memory);
    const ServiceDemand& d = work.req.demand;
    if (d.cpu_php.ns > 0) co_await os::Compute{d.cpu_php};
    if (d.cpu_db.ns > 0) co_await os::Compute{d.cpu_db};
    if (d.io_wait.ns > 0) co_await os::SleepFor{d.io_wait};
    node_->stats().free_memory(cfg_.per_request_memory);
    Reply reply;
    reply.id = work.req.id;
    reply.query_class = work.req.query_class;
    co_await work.reply_to->send(self, d.reply_bytes, reply);
    ++completed_;
  }
}

}  // namespace rdmamon::web
