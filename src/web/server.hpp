// The back-end web server application: an Apache-prefork-style worker pool
// executing Request demands (PHP CPU, MySQL CPU, disk wait) and replying
// on the connection the request arrived on.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "net/fabric.hpp"
#include "net/socket.hpp"
#include "os/node.hpp"
#include "web/request.hpp"

namespace rdmamon::web {

struct ServerConfig {
  int workers = 8;
  /// Transient memory held while a request is processed (shows up in the
  /// back end's memory load index).
  std::uint64_t per_request_memory = 4ull << 20;
};

class WebServer {
 public:
  WebServer(net::Fabric& fabric, os::Node& node, ServerConfig cfg);

  WebServer(const WebServer&) = delete;
  WebServer& operator=(const WebServer&) = delete;

  /// Starts serving requests arriving on `server_end` (one rx thread per
  /// listening connection; the shared worker pool serves all of them).
  void listen(net::Socket& server_end);

  os::Node& node() { return *node_; }
  std::uint64_t completed() const { return completed_; }
  std::size_t queue_depth() const { return queue_.size(); }

 private:
  struct PendingWork {
    Request req;
    net::Socket* reply_to;
  };

  os::Program rx_body(os::SimThread& self, net::Socket* sock);
  os::Program worker_body(os::SimThread& self);

  net::Fabric* fabric_;
  os::Node* node_;
  ServerConfig cfg_;
  std::deque<PendingWork> queue_;
  os::WaitQueue work_wq_;
  std::uint64_t completed_ = 0;
  bool workers_started_ = false;
};

}  // namespace rdmamon::web
