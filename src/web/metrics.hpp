// Response-time and throughput accounting for the application-level
// experiments (Table 1, Figs 7-9).
#pragma once

#include <map>

#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace rdmamon::web {

/// Collects per-class and overall response times plus completion counts.
class ResponseStats {
 public:
  void record(int query_class, sim::Duration response_time) {
    auto& h = per_class_[query_class];
    h.add(static_cast<double>(response_time.ns));
    overall_.add(static_cast<double>(response_time.ns));
    ++completed_;
  }

  void record_rejected() { ++rejected_; }

  /// Per-class stats; creates an empty slot if absent.
  const sim::OnlineStats& by_class(int query_class) const {
    static const sim::OnlineStats empty;
    auto it = per_class_.find(query_class);
    return it == per_class_.end() ? empty : it->second;
  }

  const sim::OnlineStats& overall() const { return overall_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t rejected() const { return rejected_; }

  /// Completions per second over the given simulated span.
  double throughput(sim::Duration span) const {
    return span.ns > 0
               ? static_cast<double>(completed_) / span.seconds()
               : 0.0;
  }

  /// Discards everything gathered so far (used to drop warm-up samples).
  void reset() {
    per_class_.clear();
    overall_ = {};
    completed_ = 0;
    rejected_ = 0;
  }

 private:
  std::map<int, sim::OnlineStats> per_class_;
  sim::OnlineStats overall_;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace rdmamon::web
