// Response-time and throughput accounting for the application-level
// experiments (Table 1, Figs 7-9).
#pragma once

#include <map>
#include <string>

#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "telemetry/registry.hpp"

namespace rdmamon::web {

/// Collects per-class and overall response times plus completion counts.
class ResponseStats {
 public:
  void record(int query_class, sim::Duration response_time) {
    const double ns = static_cast<double>(response_time.ns);
    per_class_[query_class].add(ns);
    overall_.add(ns);
    per_class_hist_[query_class].add(ns);
    overall_hist_.add(ns);
    ++completed_;
  }

  void record_rejected() { ++rejected_; }

  /// Per-class stats; creates an empty slot if absent.
  const sim::OnlineStats& by_class(int query_class) const {
    static const sim::OnlineStats empty;
    auto it = per_class_.find(query_class);
    return it == per_class_.end() ? empty : it->second;
  }

  const sim::OnlineStats& overall() const { return overall_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t rejected() const { return rejected_; }

  /// Per-class / overall response-time distributions (log-bucketed, so
  /// p50/p90/p99 are available, not just the mean).
  const sim::Histogram& hist_by_class(int query_class) const {
    static const sim::Histogram empty;
    auto it = per_class_hist_.find(query_class);
    return it == per_class_hist_.end() ? empty : it->second;
  }
  const sim::Histogram& overall_hist() const { return overall_hist_; }

  /// Re-exports the percentiles gathered so far into the registry as
  /// gauges (web.response.*), labelled by `base` + {class=...}. Typically
  /// run from a snapshot-time collector.
  void export_to(telemetry::Registry& reg,
                 const telemetry::Labels& base = {}) const {
    auto put = [&reg, &base](const std::string& cls,
                             const sim::Histogram& h) {
      telemetry::Labels l = base;
      l.add("class", cls);
      reg.gauge("web.response.count", l)
          .set(static_cast<double>(h.count()));
      reg.gauge("web.response.mean_ns", l).set(h.mean());
      reg.gauge("web.response.p50_ns", l).set(h.percentile(0.50));
      reg.gauge("web.response.p90_ns", l).set(h.percentile(0.90));
      reg.gauge("web.response.p99_ns", l).set(h.percentile(0.99));
    };
    put("all", overall_hist_);
    for (const auto& [cls, h] : per_class_hist_) put(std::to_string(cls), h);
    reg.gauge("web.response.rejected", base)
        .set(static_cast<double>(rejected_));
  }

  /// Completions per second over the given simulated span.
  double throughput(sim::Duration span) const {
    return span.ns > 0
               ? static_cast<double>(completed_) / span.seconds()
               : 0.0;
  }

  /// Discards everything gathered so far (used to drop warm-up samples).
  void reset() {
    per_class_.clear();
    overall_ = {};
    per_class_hist_.clear();
    overall_hist_.reset();
    completed_ = 0;
    rejected_ = 0;
  }

 private:
  std::map<int, sim::OnlineStats> per_class_;
  sim::OnlineStats overall_;
  std::map<int, sim::Histogram> per_class_hist_;
  sim::Histogram overall_hist_;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace rdmamon::web
