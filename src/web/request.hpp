// Request/reply envelopes exchanged between clients, the front-end
// dispatcher and the back-end web servers.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace rdmamon::web {

/// Service demand of one request at a back end, executed as:
/// CPU burst (PHP) -> CPU burst (MySQL) -> I/O wait (no CPU) -> reply.
/// Static content uses cpu_php for the serve cost and io_wait for disk.
struct ServiceDemand {
  sim::Duration cpu_php{};
  sim::Duration cpu_db{};
  sim::Duration io_wait{};
  std::size_t reply_bytes = 1024;
};

/// One client request flowing through dispatcher and back end.
struct Request {
  std::uint64_t id = 0;
  /// Workload class for per-class metrics: RUBiS query index (0..7), or
  /// kStaticClass for Zipf static content.
  int query_class = 0;
  bool is_static = false;
  ServiceDemand demand;
  std::size_t request_bytes = 512;
  sim::TimePoint created_at{};
};

/// Per-class metric slot used for Zipf static requests.
inline constexpr int kStaticClass = 100;

/// Reply envelope (routed back through the dispatcher).
struct Reply {
  std::uint64_t id = 0;
  int query_class = 0;
  bool rejected = false;  ///< admission control turned the request away
};

}  // namespace rdmamon::web
