#include "web/cluster.hpp"

namespace rdmamon::web {

ClusterTestbed::ClusterTestbed(sim::Simulation& simu, ClusterConfig cfg)
    : simu_(simu), cfg_(cfg), seed_rng_(cfg.seed) {
  fabric_ = std::make_unique<net::Fabric>(simu_, cfg_.fabric);

  monitor::MonitorConfig mcfg;
  mcfg.scheme = cfg_.scheme;
  mcfg.period = cfg_.monitor_period;
  mcfg.fetch_timeout = cfg_.fetch_timeout;
  mcfg.fetch_retries = cfg_.fetch_retries;
  mcfg.retry_backoff = cfg_.retry_backoff;
  mcfg.tenant = cfg_.monitor_tenant;

  if (cfg_.frontends <= 1) {
    // The paper's single-front-end testbed, wired exactly as before the
    // scale-out plane existed (same node names, same construction order,
    // same thread spawn order) so fixed-seed runs stay byte-identical.
    frontends_.push_back(std::make_unique<os::Node>(simu_, cfg_.frontend_node));
    os::Node& fe = *frontends_.back();
    fabric_->attach(fe);

    lb_ = std::make_unique<lb::LoadBalancer>(
        lb::WeightConfig::for_scheme(cfg_.scheme));
    lb_->set_health_config(cfg_.health);
    dispatchers_.push_back(
        std::make_unique<lb::Dispatcher>(*fabric_, fe, *lb_));
    // A back end declared Dead immediately rejects its pending requests so
    // closed-loop clients unblock and retraffic the survivors.
    dispatchers_.back()->enable_failover();

    const std::vector<std::shared_ptr<net::QpContext>> pool =
        net::make_context_pool(fabric_->nic(fe.id), cfg_.verbs);
    for (int i = 0; i < cfg_.backends; ++i) {
      os::NodeConfig ncfg = cfg_.backend_node;
      ncfg.name = "backend" + std::to_string(i);
      backends_.push_back(std::make_unique<os::Node>(simu_, ncfg));
      os::Node& node = *backends_.back();
      fabric_->attach(node);
      servers_.push_back(
          std::make_unique<WebServer>(*fabric_, node, cfg_.server));
      dispatchers_.back()->add_backend(*servers_.back());
      std::shared_ptr<net::QpContext> ctx =
          pool.empty() ? nullptr
                       : pool[static_cast<std::size_t>(i) % pool.size()];
      lb_->add_backend(std::make_unique<monitor::MonitorChannel>(
          *fabric_, fe, node, mcfg, std::move(ctx)));
    }
    lb_->set_verbs_tuning(cfg_.verbs);
    lb_->set_poll_mode(cfg_.lb_poll_mode);
    lb_->start(fe, cfg_.lb_granularity);
  } else {
    // Scale-out testbed: M front ends over one shared back-end set. The
    // plane owns the balancers (one per front end, poll-filtered to its
    // ring shard) and the shared per-back-end monitors; each front end
    // gets its own dispatcher over every server.
    cluster::ScaleOutConfig scfg = cfg_.scaleout;
    scfg.verbs = cfg_.verbs;
    plane_ = std::make_unique<cluster::ScaleOutPlane>(*fabric_, scfg, mcfg);
    for (int m = 0; m < cfg_.frontends; ++m) {
      os::NodeConfig ncfg = cfg_.frontend_node;
      ncfg.name = "frontend" + std::to_string(m);
      frontends_.push_back(std::make_unique<os::Node>(simu_, ncfg));
      os::Node& fe = *frontends_.back();
      fabric_->attach(fe);
      cluster::FrontendPlane& fp = plane_->add_frontend(
          fe, lb::WeightConfig::for_scheme(cfg_.scheme));
      fp.balancer().set_health_config(cfg_.health);
      fp.balancer().set_poll_mode(cfg_.lb_poll_mode);
      lb::DispatcherConfig dcfg;
      dcfg.telemetry_instance = fe.name();
      dispatchers_.push_back(
          std::make_unique<lb::Dispatcher>(*fabric_, fe, fp.balancer(), dcfg));
      dispatchers_.back()->enable_failover();
    }
    for (int i = 0; i < cfg_.backends; ++i) {
      os::NodeConfig ncfg = cfg_.backend_node;
      ncfg.name = "backend" + std::to_string(i);
      backends_.push_back(std::make_unique<os::Node>(simu_, ncfg));
      os::Node& node = *backends_.back();
      fabric_->attach(node);
      servers_.push_back(
          std::make_unique<WebServer>(*fabric_, node, cfg_.server));
      plane_->add_backend(node);
      for (auto& d : dispatchers_) d->add_backend(*servers_.back());
    }
    plane_->start(cfg_.lb_granularity);
  }

  if (cfg_.admission_threshold >= 0.0) {
    admission_ =
        std::make_unique<lb::AdmissionController>(cfg_.admission_threshold);
    for (auto& d : dispatchers_) d->set_admission(admission_.get());
  }
}

ClusterTestbed::~ClusterTestbed() = default;

ClientGroup& ClusterTestbed::add_clients(int nodes, RequestGenerator gen,
                                         ClientGroupConfig ccfg) {
  if (ccfg.name.empty() || (ccfg.name == "g0" && !groups_.empty())) {
    ccfg.name = "g" + std::to_string(groups_.size());
  }
  std::vector<os::Node*> group_nodes;
  for (int i = 0; i < nodes; ++i) {
    os::NodeConfig ncfg = cfg_.client_node;
    ncfg.name = "client" + std::to_string(clients_.size());
    clients_.push_back(std::make_unique<os::Node>(simu_, ncfg));
    fabric_->attach(*clients_.back());
    group_nodes.push_back(clients_.back().get());
  }
  // Scale-out mode: client groups spread round-robin over the front-end
  // dispatchers (group g talks to front end g mod M). Single-front-end
  // mode has one dispatcher, so this is the historical wiring.
  lb::Dispatcher& disp = *dispatchers_[groups_.size() % dispatchers_.size()];
  groups_.push_back(std::make_unique<ClientGroup>(
      *fabric_, disp, std::move(group_nodes), std::move(gen), ccfg,
      seed_rng_.split()));
  return *groups_.back();
}

RequestGenerator make_rubis_generator() {
  auto wl = std::make_shared<workload::RubisWorkload>();
  return [wl](sim::Rng& rng) {
    const auto inst = wl->sample_instance(rng);
    Request r;
    r.query_class = static_cast<int>(inst.query);
    r.demand.cpu_php = inst.php_cpu;
    r.demand.cpu_db = inst.db_cpu;
    r.demand.io_wait = inst.db_io;
    r.demand.reply_bytes = inst.reply_bytes;
    return r;
  };
}

RequestGenerator make_rubis_generator(workload::RubisQuery q) {
  auto wl = std::make_shared<workload::RubisWorkload>();
  return [wl, q](sim::Rng& rng) {
    const auto inst = wl->instance_of(q, rng);
    Request r;
    r.query_class = static_cast<int>(q);
    r.demand.cpu_php = inst.php_cpu;
    r.demand.cpu_db = inst.db_cpu;
    r.demand.io_wait = inst.db_io;
    r.demand.reply_bytes = inst.reply_bytes;
    return r;
  };
}

RequestGenerator make_zipf_generator(
    std::shared_ptr<const workload::ZipfTrace> trace) {
  return [trace](sim::Rng& rng) {
    const workload::StaticRequest sr = trace->sample(rng);
    Request r;
    r.query_class = kStaticClass;
    r.is_static = true;
    r.demand.cpu_php = sr.cpu_demand;
    r.demand.io_wait = sr.io_wait;
    r.demand.reply_bytes = sr.bytes;
    return r;
  };
}

}  // namespace rdmamon::web
