// Multi-front-end scale-out: three LoadBalancer front ends share one
// twelve-back-end cluster. The consistent-hash ring partitions polling
// (each back end has exactly ONE owner per round, so the probe load a
// back end serves does not grow with the number of front ends), and
// each owner publishes its shard's load view into a registered MR that
// peers RDMA-READ — so every front end still sees all twelve back ends,
// with bounded staleness, at the price of a few one-sided READs per
// gossip period. Mid-run, front end 0 drains for maintenance and later
// rejoins: watch ownership flow to the survivors and back.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/scaleout.hpp"
#include "sim/simulation.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

using namespace rdmamon;

namespace {

void print_state(cluster::ScaleOutPlane& plane, const char* label) {
  const int m = plane.frontend_count();
  const int n = plane.backend_count();
  std::cout << label << ":\n";
  util::Table t;
  t.set_header({"front end", "member", "owns", "polls ok", "gossip READs",
                "max peer-view age"});
  t.set_align(0, util::Align::Left);
  for (int i = 0; i < m; ++i) {
    cluster::FrontendPlane& fe = plane.frontend(i);
    std::uint64_t polls = 0;
    for (std::uint64_t p : fe.poll_counts()) polls += p;
    t.add_row({"frontend" + std::to_string(i),
               plane.membership().is_member(i) ? "yes" : "no",
               std::to_string(fe.owned_count()) + "/" + std::to_string(n),
               std::to_string(polls), std::to_string(fe.gossip_reads_ok()),
               util::format_double(
                   static_cast<double>(fe.max_peer_view_age().ns) / 1e6, 1) +
                   " ms"});
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  sim::Simulation simu;
  net::Fabric fabric(simu, {});

  // Front ends attach first, then back ends (ids follow attach order).
  std::vector<std::unique_ptr<os::Node>> fes, bes;
  for (int i = 0; i < 3; ++i) {
    fes.push_back(std::make_unique<os::Node>(
        simu, os::NodeConfig{.name = "frontend" + std::to_string(i)}));
    fabric.attach(*fes.back());
  }
  for (int i = 0; i < 12; ++i) {
    bes.push_back(std::make_unique<os::Node>(
        simu, os::NodeConfig{.name = "backend" + std::to_string(i)}));
    fabric.attach(*bes.back());
  }

  monitor::MonitorConfig mcfg;
  mcfg.scheme = monitor::Scheme::RdmaSync;  // daemon-less one-sided polls
  mcfg.period = sim::msec(10);
  cluster::ScaleOutConfig scfg;  // 25 ms gossip, 200 ms staleness bound
  cluster::ScaleOutPlane plane(fabric, scfg, mcfg);
  for (auto& fe : fes) plane.add_frontend(*fe, {});
  for (auto& be : bes) plane.add_backend(*be);
  plane.start(sim::msec(10));

  simu.run_for(sim::seconds(1));
  print_state(plane, "t=1s (steady state, 3 front ends)");

  // Drain front end 0 for maintenance: its shard flows to the survivors
  // before their next poll round; no back end goes unmonitored.
  plane.frontend(0).leave("maintenance");
  simu.run_for(sim::seconds(1));
  print_state(plane, "\nt=2s (frontend0 drained)");

  plane.frontend(0).rejoin("maintenance done");
  simu.run_for(sim::seconds(1));
  print_state(plane, "\nt=3s (frontend0 back)");

  std::cout << "\nmembership trace:\n";
  for (const std::string& line : plane.membership().log())
    std::cout << "  " << line << '\n';
  std::cout << "Ownership is a partition at every instant: scaling the "
               "control plane out never multiplies per-backend probe "
               "traffic.\n";
  return 0;
}
