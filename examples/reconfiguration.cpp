// The paper's future-work scenario (Section 7): dynamic reconfiguration of
// a shared data-center driven by accurate RDMA-based monitoring. Two
// hosted services share six back ends; when service A's traffic surges,
// the manager flips idle service-B nodes over to A with one-sided RDMA
// WRITEs — no daemon runs on any back end for either the monitoring or
// the reconfiguration path.
#include <iostream>

#include "reconfig/reconfig.hpp"
#include "sim/simulation.hpp"
#include "util/format.hpp"
#include "util/table.hpp"
#include "workload/synthetic.hpp"

using namespace rdmamon;

int main() {
  sim::Simulation simu;
  net::Fabric fabric(simu, {});
  os::Node frontend(simu, {.name = "frontend"});
  fabric.attach(frontend);

  std::vector<std::unique_ptr<os::Node>> backends;
  std::vector<std::unique_ptr<reconfig::RoleRegion>> roles;
  reconfig::ReconfigConfig cfg;
  cfg.monitor.scheme = monitor::Scheme::RdmaSync;
  cfg.check_period = sim::msec(100);
  cfg.cooldown = sim::msec(400);
  reconfig::ReconfigManager manager(fabric, frontend, cfg);

  for (int i = 0; i < 6; ++i) {
    os::NodeConfig ncfg;
    ncfg.name = "server" + std::to_string(i);
    backends.push_back(std::make_unique<os::Node>(simu, ncfg));
    fabric.attach(*backends.back());
    roles.push_back(std::make_unique<reconfig::RoleRegion>(
        fabric, *backends.back(),
        i < 3 ? reconfig::Role::ServiceA : reconfig::Role::ServiceB));
    manager.add_backend(*roles.back());
  }
  manager.start();

  // At t=1s, service A's three nodes get slammed (a flash crowd).
  simu.after(sim::seconds(1), [&] {
    for (int i = 0; i < 3; ++i) {
      for (int k = 0; k < 5; ++k) {
        backends[static_cast<std::size_t>(i)]->spawn(
            "surge", [](os::SimThread&) -> os::Program {
              for (;;) co_await os::Compute{sim::seconds(100)};
            });
      }
    }
  });

  auto print_state = [&](const char* label) {
    std::cout << label << ": A has " << manager.nodes_in(reconfig::Role::ServiceA)
              << " nodes (pool load "
              << util::format_double(manager.pool_load(reconfig::Role::ServiceA), 2)
              << "), B has " << manager.nodes_in(reconfig::Role::ServiceB)
              << " nodes (pool load "
              << util::format_double(manager.pool_load(reconfig::Role::ServiceB), 2)
              << "), reconfigurations so far: "
              << manager.reconfigurations() << '\n';
  };

  simu.run_for(sim::seconds(1));
  print_state("t=1s (before surge)");
  simu.run_for(sim::seconds(1));
  print_state("t=2s (surge hit A)  ");
  simu.run_for(sim::seconds(3));
  print_state("t=5s (rebalanced)   ");

  util::Table t;
  t.set_header({"server", "role"});
  t.set_align(0, util::Align::Left);
  for (std::size_t i = 0; i < roles.size(); ++i) {
    t.add_row({backends[i]->name(),
               reconfig::to_string(roles[i]->role())});
  }
  t.print(std::cout);
  std::cout << "Every role flip was a single one-sided RDMA WRITE into the "
               "server's registered role word.\n";
  return 0;
}
