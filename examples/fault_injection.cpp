// Fault injection in ~60 lines: freeze a back end's kernel mid-run and
// watch Socket-Sync probes time out while RDMA-Sync keeps answering —
// the paper's one-sided-monitoring claim, then crash it and watch both
// fail fast (bounded fetch: timeout + retries, never a hang).
#include <iostream>

#include "fault/fault.hpp"
#include "monitor/monitor.hpp"
#include "net/fabric.hpp"
#include "os/node.hpp"
#include "sim/simulation.hpp"
#include "util/table.hpp"

using namespace rdmamon;

int main() {
  sim::Simulation simu;
  net::Fabric fabric(simu, {});
  os::Node frontend(simu, {.name = "frontend"});
  os::Node backend(simu, {.name = "backend"});
  fabric.attach(frontend);
  fabric.attach(backend);

  monitor::MonitorConfig cfg;
  cfg.fetch_timeout = sim::msec(5);
  cfg.fetch_retries = 2;
  cfg.retry_backoff = sim::msec(2);
  cfg.scheme = monitor::Scheme::RdmaSync;
  monitor::MonitorChannel rdma(fabric, frontend, backend, cfg);
  cfg.scheme = monitor::Scheme::SocketSync;
  monitor::MonitorChannel sock(fabric, frontend, backend, cfg);

  // t=100..300ms: hung kernel (NIC alive). t=400..600ms: full crash.
  fault::FaultPlan plan;
  plan.freeze_for(backend.id, sim::TimePoint{sim::msec(100).ns},
                  sim::msec(200));
  plan.crash_for(backend.id, sim::TimePoint{sim::msec(400).ns},
                 sim::msec(200));
  fault::FaultInjector injector(fabric);
  injector.arm(plan);
  std::cout << "fault plan:\n" << plan.describe() << '\n';

  util::Table t;
  t.set_header({"t (ms)", "backend state", "RDMA-Sync", "Socket-Sync"});
  auto outcome = [](const monitor::MonitorSample& s) {
    return s.ok ? std::string("ok (") + std::to_string(s.attempts) +
                      " attempt)"
                : std::string(to_string(s.error)) + " (" +
                      std::to_string(s.attempts) + " attempts)";
  };
  frontend.spawn("probe", [&](os::SimThread& self) -> os::Program {
    for (int i = 0; i < 8; ++i) {
      co_await os::SleepFor{sim::msec(100)};
      const auto& fs = fabric.fault_state(backend.id);
      const char* state =
          fs.crashed ? "CRASHED" : fs.frozen ? "FROZEN" : "healthy";
      const double ms = simu.now().millis();
      monitor::MonitorSample r, s;
      co_await rdma.frontend().fetch(self, r);
      co_await sock.frontend().fetch(self, s);
      t.add_row({std::to_string(static_cast<int>(ms)), state, outcome(r),
                 outcome(s)});
    }
  });
  simu.run_for(sim::seconds(1));

  t.print(std::cout);
  std::cout << "\nfrozen: the NIC's DMA engine still serves one-sided "
               "READs; the socket path needs the hung kernel.\n"
               "crashed: both fail — but in bounded time, with an error "
               "kind, never a hang.\n";
  return 0;
}
