// Admission control on top of the monitored load index — the paper's
// motivating use-case ("systems rely on cluster resource usage information
// for admission control; inaccurate information leads to lost revenue").
// Compares how many requests the cluster admits under coarse socket-based
// vs fine-grained RDMA-based monitoring at the same admission threshold.
#include <iostream>

#include "util/format.hpp"
#include "util/table.hpp"
#include "web/cluster.hpp"
#include "workload/synthetic.hpp"

using namespace rdmamon;

namespace {

struct Outcome {
  std::uint64_t admitted;
  std::uint64_t rejected;
  double completed_per_s;
  double avg_ms;
};

Outcome run(monitor::Scheme scheme, sim::Duration granularity) {
  sim::Simulation simu;
  web::ClusterConfig cfg;
  cfg.backends = 8;
  cfg.scheme = scheme;
  cfg.lb_granularity = granularity;
  cfg.admission_threshold = 0.7;  // reject when the best server is hot
  web::ClusterTestbed bed(simu, cfg);

  web::ClientGroupConfig ccfg;
  ccfg.threads_per_node = 12;
  ccfg.think = sim::msec(5);  // offered load near saturation
  web::ClientGroup& clients =
      bed.add_clients(8, web::make_rubis_generator(), ccfg);

  os::Node storage(simu, {.name = "storage"});
  bed.fabric().attach(storage);
  workload::DisturbanceGenerator disturbances(
      bed.fabric(), bed.backend_ptrs(), storage, {}, sim::Rng(11));

  simu.run_for(sim::seconds(10));
  return Outcome{bed.admission()->admitted(), bed.admission()->rejected(),
                 clients.stats().throughput(sim::seconds(10)),
                 clients.stats().overall().mean() / 1e6};
}

}  // namespace

int main() {
  std::cout << "Admission control at threshold 0.7, offered load near "
               "saturation (10 simulated seconds):\n\n";
  util::Table t;
  t.set_header({"scheme @ granularity", "admitted", "rejected",
                "served req/s", "avg resp (ms)"});
  t.set_align(0, util::Align::Left);

  struct Case {
    monitor::Scheme scheme;
    sim::Duration g;
    const char* label;
  };
  const Case cases[] = {
      {monitor::Scheme::SocketAsync, sim::msec(1024),
       "Socket-Async @ 1024ms (coarse)"},
      {monitor::Scheme::SocketAsync, sim::msec(64),
       "Socket-Async @ 64ms"},
      {monitor::Scheme::RdmaSync, sim::msec(64), "RDMA-Sync @ 64ms"},
      {monitor::Scheme::ERdmaSync, sim::msec(64), "e-RDMA-Sync @ 64ms"},
  };
  std::uint64_t coarse_admitted = 0, fine_admitted = 0;
  for (const Case& c : cases) {
    const Outcome o = run(c.scheme, c.g);
    if (c.scheme == monitor::Scheme::SocketAsync &&
        c.g == sim::msec(1024)) {
      coarse_admitted = o.admitted;
    }
    if (c.scheme == monitor::Scheme::RdmaSync) fine_admitted = o.admitted;
    t.add_row({c.label, std::to_string(o.admitted),
               std::to_string(o.rejected),
               util::format_double(o.completed_per_s, 0),
               util::format_double(o.avg_ms, 1)});
  }
  t.print(std::cout);
  if (coarse_admitted > 0) {
    std::cout << "\nFine-grained RDMA-Sync admits "
              << util::format_double(
                     (static_cast<double>(fine_admitted) / coarse_admitted -
                      1.0) *
                         100.0,
                     1)
              << "% more requests than coarse socket-based monitoring "
                 "(the paper reports up to 25%).\n";
  }
  return 0;
}
