// Quickstart: build a two-node fabric, register the back end's kernel
// statistics for one-sided access, and fetch its load from the front end
// with the RDMA-Sync scheme — the paper's core idea in ~40 lines.
#include <iostream>

#include "monitor/monitor.hpp"
#include "net/fabric.hpp"
#include "os/node.hpp"
#include "sim/simulation.hpp"

using namespace rdmamon;

int main() {
  sim::Simulation simu;
  net::Fabric fabric(simu, {});

  os::Node frontend(simu, {.name = "frontend"});
  os::Node backend(simu, {.name = "backend"});
  fabric.attach(frontend);
  fabric.attach(backend);

  // Put some work on the back end so there is something to observe.
  for (int i = 0; i < 3; ++i) {
    backend.spawn("worker" + std::to_string(i),
                  [](os::SimThread&) -> os::Program {
                    for (;;) co_await os::Compute{sim::msec(5)};
                  });
  }

  // RDMA-Sync: no back-end daemon; the kernel stats pages are registered
  // read-only and fetched with one-sided READs.
  monitor::MonitorConfig cfg;
  cfg.scheme = monitor::Scheme::RdmaSync;
  monitor::MonitorChannel channel(fabric, frontend, backend, cfg);

  frontend.spawn("monitor", [&](os::SimThread& self) -> os::Program {
    for (int i = 0; i < 5; ++i) {
      co_await os::SleepFor{sim::msec(100)};
      monitor::MonitorSample s;
      co_await channel.frontend().fetch(self, s);
      std::cout << "t=" << sim::to_string(simu.now())
                << "  cpu=" << s.info.cpu_load
                << "  runnable=" << s.info.nr_running
                << "  fetched in " << sim::to_string(s.latency())
                << " (staleness " << sim::to_string(s.staleness()) << ")\n";
    }
  });

  simu.run_for(sim::seconds(1));
  std::cout << "back-end monitoring threads required: "
            << backend.stats().nr_threads() - 3 << " (RDMA-Sync needs none)\n";
  return 0;
}
