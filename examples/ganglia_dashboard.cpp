// Ganglia integration: gmond daemons on every node gossip their default
// metrics, while gmetric agents inject fine-grained per-back-end load
// captured through RDMA-Sync. Prints the front-end daemon's metric store —
// a one-shot "dashboard" of the cluster.
#include <iomanip>
#include <iostream>

#include "ganglia/ganglia.hpp"
#include "net/fabric.hpp"
#include "os/node.hpp"
#include "sim/simulation.hpp"
#include "util/format.hpp"
#include "util/table.hpp"
#include "workload/synthetic.hpp"

using namespace rdmamon;

int main() {
  sim::Simulation simu;
  net::Fabric fabric(simu, {});

  std::vector<std::unique_ptr<os::Node>> nodes;
  std::vector<os::Node*> ptrs;
  for (int i = 0; i < 5; ++i) {
    os::NodeConfig cfg;
    cfg.name = i == 0 ? "frontend" : "server" + std::to_string(i);
    nodes.push_back(std::make_unique<os::Node>(simu, cfg));
    fabric.attach(*nodes.back());
    ptrs.push_back(nodes.back().get());
  }

  // Uneven load so the dashboard shows something interesting.
  for (int i = 1; i < 5; ++i) {
    for (int k = 0; k < i - 1; ++k) {
      ptrs[static_cast<std::size_t>(i)]->spawn(
          "job" + std::to_string(k), [](os::SimThread&) -> os::Program {
            for (;;) co_await os::Compute{sim::msec(10)};
          });
    }
  }

  ganglia::GangliaConfig gcfg;
  gcfg.collect_period = sim::msec(500);
  ganglia::GangliaCluster gang(fabric, ptrs, gcfg);

  // Fine-grained gmetric via RDMA-Sync for every server.
  monitor::MonitorConfig mcfg;
  mcfg.scheme = monitor::Scheme::RdmaSync;
  std::vector<std::unique_ptr<ganglia::GmetricAgent>> agents;
  for (int i = 1; i < 5; ++i) {
    agents.push_back(std::make_unique<ganglia::GmetricAgent>(
        fabric, gang.daemon(0), *ptrs[0], *ptrs[static_cast<std::size_t>(i)],
        mcfg, sim::msec(16), sim::msec(500)));
  }

  simu.run_for(sim::seconds(3));

  util::Table t;
  t.set_header({"host", "cpu_load", "proc_run", "fine-grained cpu"});
  t.set_align(0, util::Align::Left);
  for (int i = 1; i < 5; ++i) {
    const std::string host = ptrs[static_cast<std::size_t>(i)]->name();
    const auto* cpu = gang.daemon(0).lookup(host, "cpu_load");
    const auto* run = gang.daemon(0).lookup(host, "proc_run");
    const auto* fine = gang.daemon(0).lookup(
        "frontend", "fg_load_" + host);
    auto fmt = [](const ganglia::MetricValue* v) {
      return v == nullptr ? std::string("-")
                          : util::format_double(v->value, 2);
    };
    t.add_row({host, fmt(cpu), fmt(run), fmt(fine)});
  }
  std::cout << "Ganglia view at the front end after 3 simulated seconds\n"
            << "(gossiped gmond metrics + RDMA-Sync gmetric at 16 ms):\n";
  t.print(std::cout);
  std::cout << "\nMetric store size at the front end: "
            << gang.daemon(0).metric_count() << " entries; each agent made "
            << agents[0]->fetches() << "+ one-sided fetches without any "
            << "server-side daemon.\n";
  return 0;
}
