// Compares all five monitoring schemes against the same loaded back end:
// fetch latency, data staleness, accuracy, and back-end footprint — the
// paper's Section 3-5 story in one table.
#include <iostream>

#include "monitor/accuracy.hpp"
#include "monitor/monitor.hpp"
#include "net/fabric.hpp"
#include "os/node.hpp"
#include "sim/simulation.hpp"
#include "util/format.hpp"
#include "util/table.hpp"
#include "workload/synthetic.hpp"

using namespace rdmamon;

namespace {

struct Row {
  double latency_us;
  double staleness_ms;
  double nr_dev;
  int backend_threads;
};

Row evaluate(monitor::Scheme scheme) {
  sim::Simulation simu;
  net::Fabric fabric(simu, {});
  os::Node frontend(simu, {.name = "frontend"});
  os::Node backend(simu, {.name = "backend"});
  os::Node peer(simu, {.name = "peer"});
  fabric.attach(frontend);
  fabric.attach(backend);
  fabric.attach(peer);

  // Background computation + communication load, as in Fig 3.
  workload::BackgroundLoadConfig bl;
  bl.threads = 8;
  workload::BackgroundLoad bg(fabric, backend, peer, bl);

  monitor::MonitorConfig cfg;
  cfg.scheme = scheme;
  monitor::MonitorChannel channel(fabric, frontend, backend, cfg);
  const int monitor_threads = backend.stats().nr_threads() - bl.threads;

  monitor::AccuracyTracker acc;
  frontend.spawn("monitor", [&](os::SimThread& self) -> os::Program {
    co_await os::SleepFor{sim::msec(200)};
    for (;;) {
      monitor::MonitorSample s;
      co_await channel.frontend().fetch(self, s);
      acc.record(s, channel.frontend().ground_truth());
      co_await os::SleepFor{sim::msec(50)};
    }
  });
  simu.run_for(sim::seconds(5));

  return Row{acc.latency_ms().mean() * 1e3, acc.staleness_ms().mean(),
             acc.nr_running_deviation().mean(), monitor_threads};
}

}  // namespace

int main() {
  util::Table t;
  t.set_header({"scheme", "fetch latency (us)", "staleness (ms)",
                "|thread-count error|", "back-end daemons"});
  t.set_align(0, util::Align::Left);
  for (monitor::Scheme s : monitor::kAllSchemes) {
    const Row r = evaluate(s);
    t.add_row({monitor::to_string(s),
               std::to_string(static_cast<int>(r.latency_us)),
               util::format_double(r.staleness_ms, 2),
               util::format_double(r.nr_dev, 2),
               std::to_string(r.backend_threads)});
  }
  std::cout << "Five schemes against the same loaded back end "
               "(8 background compute+comm threads, T = 50 ms):\n";
  t.print(std::cout);
  std::cout << "\nRDMA-Sync / e-RDMA-Sync: flat latency, microsecond "
               "staleness, exact thread counts, zero back-end daemons.\n";
  return 0;
}
