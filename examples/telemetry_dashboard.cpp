// The telemetry plane end to end: install a Registry, run a small RUBiS
// cluster with a mid-run back-end crash, then dump the dashboard the
// registry assembled — fetch outcome counters and latency percentiles per
// backend, NIC/socket traffic, balancer health transitions and dispatch
// totals, fault events as spans — plus the Prometheus and JSON exports,
// and finally read the front end's own telemetry through a one-sided
// RDMA READ (the monitoring plane monitoring itself).
#include <iostream>

#include "fault/fault.hpp"
#include "monitor/meta.hpp"
#include "net/verbs.hpp"
#include "os/node.hpp"
#include "sim/simulation.hpp"
#include "telemetry/export.hpp"
#include "telemetry/registry.hpp"
#include "web/cluster.hpp"

using namespace rdmamon;

int main() {
  sim::Simulation simu;

  // The registry must be installed BEFORE wiring the system: components
  // resolve their instruments when traffic first flows.
  telemetry::Registry reg;
  reg.install(simu);

  web::ClusterConfig cfg;
  cfg.backends = 3;
  cfg.scheme = monitor::Scheme::RdmaSync;
  cfg.lb_granularity = sim::msec(10);
  cfg.fetch_timeout = sim::msec(5);
  cfg.fetch_retries = 1;
  cfg.seed = 7;
  web::ClusterTestbed bed(simu, cfg);

  web::ClientGroupConfig ccfg;
  ccfg.threads_per_node = 6;
  ccfg.think = sim::msec(8);
  bed.add_clients(2, web::make_rubis_generator(), ccfg);

  // Self-monitoring: the front end publishes its own snapshot into a
  // registered MR, refreshed every 50 ms (RDMA-Async applied to the
  // monitor itself).
  monitor::TelemetrySelfMonitor meta(bed.fabric(), bed.frontend(), reg);

  // Crash backend0 for the middle of the run so health transitions and
  // fault spans show up in the dump.
  fault::FaultPlan plan;
  plan.crash_for(bed.backend(0).id, sim::TimePoint{sim::msec(400).ns},
                 sim::msec(300));
  fault::FaultInjector inj(bed.fabric());
  inj.arm(plan);

  // A reader node samples the front end's published snapshot one-sided.
  os::Node reader(simu, {.name = "reader"});
  bed.fabric().attach(reader);
  telemetry::Snapshot remote;
  bool remote_ok = false;
  reader.spawn("meta-reader", [&](os::SimThread& self) -> os::Program {
    co_await os::SleepFor{sim::msec(900)};
    net::CompletionQueue cq;
    net::QueuePair qp{bed.fabric().nic(reader.id), meta.node_id(), cq};
    net::Completion c;
    co_await net::rdma_read_sync(self, qp, meta.mr_key(),
                                 meta.config().slot_bytes, c);
    if (c.status == net::WcStatus::Success) {
      remote = std::any_cast<telemetry::Snapshot>(c.data);
      remote_ok = true;
    }
  });

  simu.run_for(sim::seconds(1));

  // 1. The human dashboard: grouped metrics + most recent spans.
  telemetry::print_dashboard(std::cout, reg.snapshot(), &reg.spans());

  // 2. Machine exports (what a scrape-file consumer would read).
  const telemetry::Snapshot snap = reg.snapshot();
  std::cout << "\n--- Prometheus exposition (first 15 lines) ---\n";
  const std::string prom = telemetry::to_prometheus(snap);
  std::size_t pos = 0;
  for (int i = 0; i < 15 && pos != std::string::npos; ++i) {
    const std::size_t nl = prom.find('\n', pos);
    std::cout << prom.substr(pos, nl - pos) << '\n';
    pos = nl == std::string::npos ? nl : nl + 1;
  }
  std::cout << "... (" << prom.size() << " bytes total)\n";

  telemetry::write_file("telemetry_snapshot.json",
                        telemetry::to_json(snap).dump(2) + "\n");
  telemetry::write_file("telemetry_spans.json",
                        telemetry::spans_to_json(reg.spans()).dump(2) + "\n");
  std::cout << "\nwrote telemetry_snapshot.json and telemetry_spans.json\n";

  // 3. The meta-monitoring read-back.
  std::cout << "\n--- self-monitoring: front-end snapshot via RDMA READ ---\n";
  if (remote_ok) {
    std::cout << "read a " << remote.entries.size()
              << "-metric snapshot published at t=" << remote.at.ns
              << "ns (publisher refreshes: " << meta.published() << ")\n";
    if (const auto* e = remote.find("lb.alive_backends")) {
      std::cout << "  lb.alive_backends at publish time: " << e->value
                << '\n';
    }
  } else {
    std::cout << "remote read failed\n";
  }
  return 0;
}
