// The paper's application scenario end-to-end: an 8-back-end auction site
// balanced by e-RDMA-Sync monitoring, serving the RUBiS browsing mix from
// 64 closed-loop clients, with shared-environment disturbances. Prints a
// per-query response-time table and the request distribution.
#include <iostream>

#include "util/format.hpp"
#include "util/table.hpp"
#include "web/cluster.hpp"
#include "workload/synthetic.hpp"

using namespace rdmamon;

int main() {
  sim::Simulation simu;
  web::ClusterConfig cfg;
  cfg.backends = 8;
  cfg.scheme = monitor::Scheme::ERdmaSync;
  web::ClusterTestbed bed(simu, cfg);

  web::ClientGroupConfig ccfg;
  ccfg.threads_per_node = 8;
  ccfg.think = sim::msec(15);
  web::ClientGroup& clients =
      bed.add_clients(8, web::make_rubis_generator(), ccfg);

  os::Node storage(simu, {.name = "storage"});
  bed.fabric().attach(storage);
  workload::DisturbanceGenerator disturbances(
      bed.fabric(), bed.backend_ptrs(), storage, {}, sim::Rng(7));

  std::cout << "Serving RUBiS on 8 back ends with e-RDMA-Sync balancing "
               "(10 simulated seconds)...\n";
  simu.run_for(sim::seconds(10));

  util::Table t;
  t.set_header({"Query", "requests", "avg (ms)", "max (ms)"});
  t.set_align(0, util::Align::Left);
  for (auto q : workload::kAllRubisQueries) {
    const auto& st = clients.stats().by_class(static_cast<int>(q));
    t.add_row({workload::to_string(q), std::to_string(st.count()),
               util::format_double(st.mean() / 1e6, 1),
               util::format_double(st.max() / 1e6, 1)});
  }
  t.print(std::cout);

  std::cout << "\nThroughput: "
            << util::format_double(
                   clients.stats().throughput(sim::seconds(10)), 0)
            << " req/s across " << disturbances.events()
            << " co-hosted disturbance events\nPer-backend distribution:";
  for (auto n : bed.dispatcher().per_backend()) std::cout << ' ' << n;
  std::cout << '\n';
  return 0;
}
